// Package service is the fault-tolerant distributed experiment service:
// a coordinator that fans grid cells out to workers under time-bounded
// leases, and the worker that simulates them. The correctness bar is
// byte-identity — a distributed run's tables and JSON must match a
// single-process cmd/experiments run of the same grids, under worker
// crashes, heartbeat stalls and coordinator restarts — and the PR-5 cell
// journal is the single durability layer that makes it hold:
//
//   - Every completed cell is journaled (fsync per record, payload
//     hashed) BEFORE the worker's report is acknowledged, so an ack
//     implies durability.
//   - A missed heartbeat expires the worker's leases and the cells are
//     redispatched; a late duplicate report is deduplicated by
//     (grid, index) + payload hash, so at-least-once dispatch still
//     yields exactly-once results.
//   - A coordinator restart rebuilds every job from its spec file and
//     journal with zero re-simulation of completed cells.
//
// Determinism does the rest: cells derive their seeds from their grid
// index (experiments.RunUniCell / RunMPCell), so *which* worker runs a
// cell, how often it is retried, and in what order results arrive are
// all invisible in the output.
package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/faultfs"
	"repro/internal/guard"
	"repro/internal/metrics"
)

// JobSpec is what a client submits: the same resolved grid configs
// cmd/experiments runs, plus the -only style section selection. The
// configs determine every cell result; the coordinator fingerprints them
// exactly as cmd/experiments does, so service journals and single-process
// journals are interchangeable.
type JobSpec struct {
	Only []string               `json:"only,omitempty"`
	Uni  *experiments.UniConfig `json:"uni,omitempty"`
	MP   *experiments.MPConfig  `json:"mp,omitempty"`
}

// grids resolves the spec to its grid sizes. Sections must be grid
// sections (the table4/fig2/... sections are single-process only); a
// grid a selected section needs must have its config present. An empty
// Only selects every section of every present config.
func (s JobSpec) grids() (uniN, mpN int, err error) {
	sel := experiments.Selection(s.Only)
	for _, name := range s.Only {
		if !experiments.IsGridSection(name) {
			return 0, 0, fmt.Errorf("service: section %q is not a grid section (want one of %s)",
				name, strings.Join(experiments.GridSections, " "))
		}
	}
	needUni := experiments.NeedUni(sel) && (len(s.Only) > 0 || s.Uni != nil)
	needMP := experiments.NeedMP(sel) && (len(s.Only) > 0 || s.MP != nil)
	if needUni {
		if s.Uni == nil {
			return 0, 0, fmt.Errorf("service: selection needs the workstation grid but the spec has no uni config")
		}
		if uniN, err = experiments.UniGridSize(*s.Uni); err != nil {
			return 0, 0, err
		}
	}
	if needMP {
		if s.MP == nil {
			return 0, 0, fmt.Errorf("service: selection needs the multiprocessor grid but the spec has no mp config")
		}
		if mpN, err = experiments.MPGridSize(*s.MP); err != nil {
			return 0, 0, err
		}
	}
	if uniN+mpN == 0 {
		return 0, 0, fmt.Errorf("service: spec selects no grid cells")
	}
	return uniN, mpN, nil
}

// fingerprint builds the spec's journal fingerprint with the same rules
// cmd/experiments uses (only the configs a selected section needs enter).
func (s JobSpec) fingerprint() (experiments.Fingerprint, error) {
	uniN, mpN, err := s.grids()
	if err != nil {
		return experiments.Fingerprint{}, err
	}
	var uni *experiments.UniConfig
	var mp *experiments.MPConfig
	if uniN > 0 {
		uni = s.Uni
	}
	if mpN > 0 {
		mp = s.MP
	}
	return experiments.NewFingerprint(uni, mp, s.Only), nil
}

// Config parameterizes the coordinator.
type Config struct {
	// Dir holds the per-job spec files and cell journals — the state a
	// restarted coordinator resumes from.
	Dir string
	// LeaseTTL bounds how long a dispatched cell may go without a
	// heartbeat before it is redispatched.
	LeaseTTL time.Duration
	// MaxJobs bounds concurrently active (incomplete) jobs; submits over
	// the bound get 429 + Retry-After.
	MaxJobs int
	// Retry is the per-cell redispatch policy: Attempts bounds how many
	// leases a cell may consume before it is recorded as failed, and the
	// capped exponential backoff with seeded jitter spaces redispatches.
	Retry guard.Retry
	// BreakerThreshold quarantines a worker after this many consecutive
	// lease expiries (a crash-looping or wedged worker stops being fed);
	// BreakerCooldown is how long the quarantine lasts.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Logf, when non-nil, receives coordinator events (leases expiring,
	// workers quarantined, jobs completing).
	Logf func(format string, args ...any)
	// FS is the filesystem the coordinator's durability layer (spec
	// files, journals) runs on; nil means the real one. The torture
	// harness passes a faultfs injector here.
	FS faultfs.FS
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4
	}
	if c.Retry.Attempts <= 0 {
		c.Retry = guard.Retry{Attempts: 3, Base: 50 * time.Millisecond, Cap: 2 * time.Second, Seed: 1}
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * c.LeaseTTL
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	c.FS = faultfs.OrOS(c.FS)
	return c
}

// Cell dispatch states.
const (
	cellPending = iota
	cellLeased
	cellDone
)

// cell is the dispatch state of one grid cell. The journal, not this
// struct, is the durability layer: everything here except the journaled
// record is reconstructed (conservatively: fresh attempt counts) after a
// coordinator restart.
type cell struct {
	grid       string
	index      int
	state      int
	attempts   int
	eligibleAt time.Time
	leaseID    int64
	worker     string
	expiry     time.Time
	hash       string // DataHash of the accepted record; the dedup identity
	failed     bool
}

// CellEvent is one line of the job's completion stream
// (GET /api/jobs/{id}/cells): cell (grid, index) completed, in arrival
// order. Replayed marks cells restored from the journal at restart.
type CellEvent struct {
	Seq      int    `json:"seq"`
	Grid     string `json:"grid"`
	Index    int    `json:"index"`
	Worker   string `json:"worker,omitempty"`
	Failed   bool   `json:"failed,omitempty"`
	Replayed bool   `json:"replayed,omitempty"`
}

// JobStatus is the GET /api/jobs/{id} response.
type JobStatus struct {
	ID         int    `json:"id"`
	Cells      int    `json:"cells"`
	Done       int    `json:"done"`
	Failed     int    `json:"failed"`
	Dupes      int    `json:"dupes"`
	Mismatches int    `json:"mismatches"`
	Complete   bool   `json:"complete"`
	Err        string `json:"err,omitempty"`
}

// JobResult is the GET /api/jobs/{id}/result response once a job
// completes: Text is byte-identical to what cmd/experiments prints to
// stdout for the selected sections, JSON to what its -json flag writes.
type JobResult struct {
	Text       string          `json:"text"`
	JSON       json.RawMessage `json:"json,omitempty"`
	Failures   int             `json:"failures"`
	Dupes      int             `json:"dupes"`
	Mismatches int             `json:"mismatches"`
}

type job struct {
	id         int
	spec       JobSpec
	journal    *experiments.Journal
	uniN       int
	mpN        int
	cells      []*cell
	done       int
	failed     int
	dupes      int
	mismatches int
	events     []CellEvent
	notify     chan struct{} // closed and replaced on every completion
	result     *JobResult
	resultErr  error
}

func (j *job) complete() bool { return j.done == len(j.cells) }

// workerState is the per-worker circuit breaker: consecutive lease
// expiries trip it, a successful (or duplicate) completion resets it.
type workerState struct {
	name             string
	lastSeen         time.Time
	consecExpiries   int
	quarantinedUntil time.Time
}

// Coordinator owns the job queue, the lease table and the journals. All
// state transitions happen under one mutex, and expired leases are swept
// synchronously at the top of every API request — there is no background
// goroutine, so a coordinator is exactly as alive as its HTTP server and
// a kill -9 can never catch it mid-flight anywhere but inside a journal
// append (which the torn-tail truncation absorbs).
type Coordinator struct {
	cfg Config

	mu        sync.Mutex
	jobs      map[int]*job
	workers   map[string]*workerState
	nextJob   int
	nextLease int64
}

var specFileRe = regexp.MustCompile(`^job-(\d+)\.spec\.json$`)

// NewCoordinator creates a coordinator over cfg.Dir, recovering every
// job whose spec file survives: its journal is reopened (binary drift is
// tolerated — results are a function of the config), intact cells replay
// with zero re-simulation, and only the remainder is redispatched.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("service: coordinator needs a state directory")
	}
	if err := cfg.FS.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: state directory: %w", err)
	}
	c := &Coordinator{cfg: cfg, jobs: map[int]*job{}, workers: map[string]*workerState{}, nextJob: 1}

	entries, err := cfg.FS.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("service: scan state directory: %w", err)
	}
	for _, e := range entries {
		m := specFileRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		id, _ := strconv.Atoi(m[1])
		if err := c.recoverJob(id); err != nil {
			return nil, fmt.Errorf("service: recover job %d: %w", id, err)
		}
		if id >= c.nextJob {
			c.nextJob = id + 1
		}
	}
	return c, nil
}

func (c *Coordinator) specPath(id int) string {
	return filepath.Join(c.cfg.Dir, fmt.Sprintf("job-%d.spec.json", id))
}

func (c *Coordinator) journalPath(id int) string {
	return filepath.Join(c.cfg.Dir, fmt.Sprintf("job-%d.journal", id))
}

// newJob builds the in-memory cell table for a validated spec.
func newJob(id int, spec JobSpec, uniN, mpN int, journal *experiments.Journal) *job {
	j := &job{id: id, spec: spec, journal: journal, uniN: uniN, mpN: mpN, notify: make(chan struct{})}
	for i := 0; i < uniN; i++ {
		j.cells = append(j.cells, &cell{grid: experiments.GridWorkstation, index: i})
	}
	for i := 0; i < mpN; i++ {
		j.cells = append(j.cells, &cell{grid: experiments.GridMultiprocessor, index: i})
	}
	return j
}

// recoverJob rebuilds one job from its spec file and journal. Cells with
// an intact journal record are done on arrival — the "zero
// re-simulation" restart guarantee; everything else redispatches with a
// fresh attempt budget.
func (c *Coordinator) recoverJob(id int) error {
	data, err := c.cfg.FS.ReadFile(c.specPath(id))
	if err != nil {
		return err
	}
	var spec JobSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return fmt.Errorf("spec file: %w", err)
	}
	uniN, mpN, err := spec.grids()
	if err != nil {
		return err
	}
	fp, err := spec.fingerprint()
	if err != nil {
		return err
	}
	// The coordinator that wrote the journal may have been a different
	// binary (a rebuild, or cmd/experiments handing a journal over); the
	// config identity is the hard check, binary drift only warns.
	journal, err := experiments.OpenJournalAllowFS(c.cfg.FS, c.journalPath(id), fp, true, func(format string, args ...any) {
		c.cfg.Logf("job %d: "+format, append([]any{id}, args...)...)
	})
	if err != nil {
		// A spec without a journal means the crash hit between the two
		// writes at submission; start the journal fresh.
		if !errors.Is(err, fs.ErrNotExist) {
			return err
		}
		if journal, err = experiments.CreateJournalFS(c.cfg.FS, c.journalPath(id), fp); err != nil {
			return err
		}
	}
	j := newJob(id, spec, uniN, mpN, journal)
	for _, cl := range j.cells {
		raw, ok := journal.ReplayRaw(cl.grid, cl.index)
		if !ok {
			continue
		}
		failed, err := recordOutcome(cl.grid, raw)
		if err != nil {
			continue // undecodable record: re-run the cell
		}
		cl.state = cellDone
		cl.hash = experiments.DataHash(raw)
		cl.failed = failed
		j.done++
		if failed {
			j.failed++
		}
		j.events = append(j.events, CellEvent{Seq: len(j.events), Grid: cl.grid, Index: cl.index, Failed: failed, Replayed: true})
	}
	c.cfg.Logf("job %d recovered: %d/%d cells replayed from journal", id, j.done, len(j.cells))
	if j.complete() {
		c.assembleLocked(j)
	}
	c.jobs[id] = j
	return nil
}

// recordOutcome validates a reported cell record for its grid and
// returns whether it records a failure. A record that is neither a
// result nor a diagnosed failure is rejected — a worker cannot ack its
// way out of doing the work.
func recordOutcome(grid string, raw json.RawMessage) (failed bool, err error) {
	switch grid {
	case experiments.GridWorkstation:
		var rec experiments.UniCellRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return false, err
		}
		if !rec.Failed && rec.Result == nil {
			return false, fmt.Errorf("service: workstation record carries neither result nor failure")
		}
		return rec.Failed, nil
	case experiments.GridMultiprocessor:
		var rec experiments.MPCellRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return false, err
		}
		if !rec.Failed && !rec.Completed {
			return false, fmt.Errorf("service: multiprocessor record carries neither result nor failure")
		}
		return rec.Failed, nil
	}
	return false, fmt.Errorf("service: unknown grid %q", grid)
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/jobs", c.handleSubmit)
	mux.HandleFunc("GET /api/jobs/{id}", c.handleStatus)
	mux.HandleFunc("GET /api/jobs/{id}/result", c.handleResult)
	mux.HandleFunc("GET /api/jobs/{id}/cells", c.handleCells)
	mux.HandleFunc("POST /api/register", c.handleRegister)
	mux.HandleFunc("POST /api/lease", c.handleLease)
	mux.HandleFunc("POST /api/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /api/complete", c.handleComplete)
	return mux
}

// Close closes every job journal (tests; the serving process normally
// lives until kill).
func (c *Coordinator) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, j := range c.jobs {
		j.journal.Close()
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// expireLocked sweeps expired leases: the cell goes back to pending with
// a backoff-delayed eligibility (or, attempts exhausted, is recorded as
// failed so the job can complete), and the worker's breaker advances.
func (c *Coordinator) expireLocked(now time.Time) {
	for _, j := range c.jobs {
		for _, cl := range j.cells {
			if cl.state != cellLeased || now.Before(cl.expiry) {
				continue
			}
			c.cfg.Logf("job %d: lease %d on %s/%d held by %q expired (attempt %d)",
				j.id, cl.leaseID, cl.grid, cl.index, cl.worker, cl.attempts)
			if w := c.workers[cl.worker]; w != nil {
				w.consecExpiries++
				if w.consecExpiries >= c.cfg.BreakerThreshold && now.After(w.quarantinedUntil) {
					w.quarantinedUntil = now.Add(c.cfg.BreakerCooldown)
					c.cfg.Logf("worker %q quarantined for %v after %d consecutive lease expiries",
						w.name, c.cfg.BreakerCooldown, w.consecExpiries)
				}
			}
			cl.state = cellPending
			cl.worker = ""
			if cl.attempts >= c.cfg.Retry.Attempts {
				c.failCellLocked(j, cl, fmt.Sprintf("dispatch: %d lease attempts expired without a result", cl.attempts))
				continue
			}
			cl.eligibleAt = now.Add(c.cfg.Retry.Delay(cellKey(j.id, cl), cl.attempts+1))
		}
	}
}

// cellKey decorrelates the redispatch jitter stream per (job, grid,
// index), the way cell seeds are decorrelated per index.
func cellKey(jobID int, cl *cell) uint64 {
	key := uint64(jobID)<<24 ^ uint64(cl.index)<<1
	if cl.grid == experiments.GridMultiprocessor {
		key |= 1
	}
	return key
}

// failCellLocked records a synthetic failed record for a cell the
// dispatcher has given up on, through the same journal-then-mark path a
// worker report takes, so the job still completes (degraded, like a
// failed in-process cell) and a restart replays the decision.
func (c *Coordinator) failCellLocked(j *job, cl *cell, reason string) {
	var payload any
	switch cl.grid {
	case experiments.GridWorkstation:
		payload = &experiments.UniCellRecord{Failed: true, Failure: reason}
	default:
		payload = &experiments.MPCellRecord{Failed: true, Failure: reason}
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return
	}
	if err := c.markDoneLocked(j, cl, raw, true, ""); err != nil {
		c.cfg.Logf("job %d: %s/%d: journaling dispatch failure: %v", j.id, cl.grid, cl.index, err)
	}
}

// markDoneLocked journals the record and transitions the cell to done —
// in that order; a record that did not reach disk is never acked and
// never counted. The final cell of a job triggers assembly.
func (c *Coordinator) markDoneLocked(j *job, cl *cell, raw json.RawMessage, failed bool, worker string) error {
	j.journal.Record(cl.grid, cl.index, raw)
	if err := j.journal.Err(); err != nil {
		return err
	}
	cl.state = cellDone
	cl.worker = ""
	cl.hash = experiments.DataHash(raw)
	cl.failed = failed
	j.done++
	if failed {
		j.failed++
	}
	j.events = append(j.events, CellEvent{Seq: len(j.events), Grid: cl.grid, Index: cl.index, Worker: worker, Failed: failed})
	if j.complete() {
		c.assembleLocked(j)
		c.cfg.Logf("job %d complete: %d cells, %d failed, %d duplicate reports, %d mismatched reports",
			j.id, j.done, j.failed, j.dupes, j.mismatches)
	}
	close(j.notify)
	j.notify = make(chan struct{})
	return nil
}

// assembleLocked folds the journal's records into the final tables and
// JSON through the exact helpers cmd/experiments prints with — this is
// where byte-identity is inherited rather than re-implemented.
func (c *Coordinator) assembleLocked(j *job) {
	sel := experiments.Selection(j.spec.Only)
	var text strings.Builder
	blob := map[string]any{}
	failures := 0
	if j.uniN > 0 {
		recs := make([]*experiments.UniCellRecord, j.uniN)
		for i := 0; i < j.uniN; i++ {
			raw, ok := j.journal.ReplayRaw(experiments.GridWorkstation, i)
			if !ok {
				j.resultErr = fmt.Errorf("service: job %d: workstation cell %d missing from journal at assembly", j.id, i)
				return
			}
			var rec experiments.UniCellRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				j.resultErr = fmt.Errorf("service: job %d: workstation cell %d: %w", j.id, i, err)
				return
			}
			recs[i] = &rec
		}
		uni, err := experiments.AssembleUni(*j.spec.Uni, recs)
		if err != nil {
			j.resultErr = err
			return
		}
		text.WriteString(experiments.RenderUniSections(sel, uni))
		blob["workstation"] = uni
		failures += uni.Failures
	}
	if j.mpN > 0 {
		recs := make([]*experiments.MPCellRecord, j.mpN)
		for i := 0; i < j.mpN; i++ {
			raw, ok := j.journal.ReplayRaw(experiments.GridMultiprocessor, i)
			if !ok {
				j.resultErr = fmt.Errorf("service: job %d: multiprocessor cell %d missing from journal at assembly", j.id, i)
				return
			}
			var rec experiments.MPCellRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				j.resultErr = fmt.Errorf("service: job %d: multiprocessor cell %d: %w", j.id, i, err)
				return
			}
			recs[i] = &rec
		}
		mpr, err := experiments.AssembleMP(*j.spec.MP, recs)
		if err != nil {
			j.resultErr = err
			return
		}
		text.WriteString(experiments.RenderMPSections(sel, mpr))
		blob["multiprocessor"] = mpr
		failures += mpr.Failures
	}
	data, err := json.MarshalIndent(blob, "", "  ")
	if err != nil {
		j.resultErr = err
		return
	}
	j.result = &JobResult{Text: text.String(), JSON: data, Failures: failures,
		Dupes: j.dupes, Mismatches: j.mismatches}
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "decode spec: %v", err)
		return
	}
	uniN, mpN, err := spec.grids()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	fp, err := spec.fingerprint()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(time.Now())
	active := 0
	for _, j := range c.jobs {
		if !j.complete() {
			active++
		}
	}
	if active >= c.cfg.MaxJobs {
		// Bounded queue: the client backs off and resubmits. Retry-After
		// is a floor, not a completion estimate.
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "coordinator at its %d-job bound; retry later", c.cfg.MaxJobs)
		return
	}

	id := c.nextJob
	specData, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		httpError(w, http.StatusBadRequest, "encode spec: %v", err)
		return
	}
	// Spec before journal: a crash between the two leaves a spec whose
	// journal recovery recreates, never a journal no restart can interpret.
	if err := metrics.WriteFileAtomicFS(c.cfg.FS, c.specPath(id), func(w io.Writer) error {
		_, werr := w.Write(specData)
		return werr
	}); err != nil {
		httpError(w, http.StatusInternalServerError, "persist spec: %v", err)
		return
	}
	journal, err := experiments.CreateJournalFS(c.cfg.FS, c.journalPath(id), fp)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "create journal: %v", err)
		return
	}
	c.nextJob++
	j := newJob(id, spec, uniN, mpN, journal)
	c.jobs[id] = j
	c.cfg.Logf("job %d submitted: %d workstation + %d multiprocessor cells", id, uniN, mpN)
	writeJSON(w, http.StatusCreated, submitResponse{ID: id, Cells: len(j.cells)})
}

func (c *Coordinator) jobFromPath(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad job id %q", r.PathValue("id"))
		return nil, false
	}
	j := c.jobs[id]
	if j == nil {
		httpError(w, http.StatusNotFound, "no job %d", id)
		return nil, false
	}
	return j, true
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(time.Now())
	j, ok := c.jobFromPath(w, r)
	if !ok {
		return
	}
	st := JobStatus{ID: j.id, Cells: len(j.cells), Done: j.done, Failed: j.failed,
		Dupes: j.dupes, Mismatches: j.mismatches, Complete: j.complete()}
	if j.resultErr != nil {
		st.Err = j.resultErr.Error()
	}
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(time.Now())
	j, ok := c.jobFromPath(w, r)
	if !ok {
		return
	}
	switch {
	case j.resultErr != nil:
		httpError(w, http.StatusInternalServerError, "%v", j.resultErr)
	case j.result == nil:
		writeJSON(w, http.StatusAccepted, JobStatus{ID: j.id, Cells: len(j.cells), Done: j.done})
	default:
		writeJSON(w, http.StatusOK, *j.result)
	}
}

// handleCells streams the job's completion events as JSON lines,
// starting at ?since=N, then follows live completions until the job is
// done or the client hangs up. A client that reconnects after a
// coordinator restart passes its last seq and sees replayed cells again
// (marked Replayed) — the stream is at-least-once, like dispatch.
func (c *Coordinator) handleCells(w http.ResponseWriter, r *http.Request) {
	since := 0
	if s := r.URL.Query().Get("since"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad since %q", s)
			return
		}
		since = n
	}
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	headerSent := false
	for {
		c.mu.Lock()
		c.expireLocked(time.Now())
		var j *job
		if !headerSent {
			var ok bool
			j, ok = c.jobFromPath(w, r)
			if !ok {
				c.mu.Unlock()
				return
			}
			headerSent = true
		} else {
			id, _ := strconv.Atoi(r.PathValue("id"))
			j = c.jobs[id]
			if j == nil {
				c.mu.Unlock()
				return
			}
		}
		var evs []CellEvent
		if since < len(j.events) {
			evs = append(evs, j.events[since:]...)
		}
		complete := j.complete()
		notify := j.notify
		c.mu.Unlock()

		for _, e := range evs {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		since += len(evs)
		if flusher != nil {
			flusher.Flush()
		}
		if complete {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-notify:
		case <-time.After(c.cfg.LeaseTTL):
			// Re-sweep even if nothing completes: expiry of the last
			// outstanding lease is itself a completion path (synthetic
			// failure records), and it only runs inside requests.
		}
	}
}

func (c *Coordinator) ensureWorkerLocked(name string, now time.Time) *workerState {
	w := c.workers[name]
	if w == nil {
		w = &workerState{name: name}
		c.workers[name] = w
		c.cfg.Logf("worker %q registered", name)
	}
	w.lastSeen = now
	return w
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
		httpError(w, http.StatusBadRequest, "register needs a worker name")
		return
	}
	c.mu.Lock()
	c.ensureWorkerLocked(req.Worker, time.Now())
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
		httpError(w, http.StatusBadRequest, "lease needs a worker name")
		return
	}
	max := req.Max
	if max <= 0 {
		max = 1
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	ws := c.ensureWorkerLocked(req.Worker, now)
	retry := leaseResponse{RetryMillis: clampMillis(c.cfg.LeaseTTL / 4)}
	if now.Before(ws.quarantinedUntil) {
		// Tripped breaker: starve the worker until the cooldown passes.
		retry.RetryMillis = clampMillis(time.Until(ws.quarantinedUntil))
		writeJSON(w, http.StatusOK, retry)
		return
	}
	var resp leaseResponse
	for _, id := range c.jobIDsLocked() {
		j := c.jobs[id]
		for _, cl := range j.cells {
			if len(resp.Leases) >= max {
				break
			}
			if cl.state != cellPending || now.Before(cl.eligibleAt) {
				continue
			}
			c.nextLease++
			cl.state = cellLeased
			cl.attempts++
			cl.leaseID = c.nextLease
			cl.worker = req.Worker
			cl.expiry = now.Add(c.cfg.LeaseTTL)
			resp.Leases = append(resp.Leases, Lease{
				Job: j.id, Grid: cl.grid, Index: cl.index,
				LeaseID: cl.leaseID, Attempt: cl.attempts,
				TTLMillis: c.cfg.LeaseTTL.Milliseconds(), Spec: j.spec,
			})
		}
	}
	if len(resp.Leases) == 0 {
		resp.RetryMillis = retry.RetryMillis
	}
	writeJSON(w, http.StatusOK, resp)
}

// jobIDsLocked returns job ids in submission order so earlier jobs
// drain first.
func (c *Coordinator) jobIDsLocked() []int {
	ids := make([]int, 0, len(c.jobs))
	for id := range c.jobs {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ { // insertion sort; the map is small
		for k := i; k > 0 && ids[k] < ids[k-1]; k-- {
			ids[k], ids[k-1] = ids[k-1], ids[k]
		}
	}
	return ids
}

func clampMillis(d time.Duration) int64 {
	ms := d.Milliseconds()
	if ms < 10 {
		ms = 10
	}
	if ms > 2000 {
		ms = 2000
	}
	return ms
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
		httpError(w, http.StatusBadRequest, "heartbeat needs a worker name")
		return
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	// Sweep FIRST: a renewal that arrives after its lease's TTL has
	// elapsed must not resurrect it — the sweep may already have
	// redispatched the cell, and renewing here would leave two workers
	// believing they hold it.
	c.expireLocked(now)
	c.ensureWorkerLocked(req.Worker, now)
	resp := heartbeatResponse{}
	if len(req.LeaseIDs) > 0 {
		// Fenced renewal: each ID renews only if that exact lease is
		// still live and still belongs to this worker.
		live := map[int64]*cell{}
		for _, j := range c.jobs {
			for _, cl := range j.cells {
				if cl.state == cellLeased && cl.worker == req.Worker {
					live[cl.leaseID] = cl
				}
			}
		}
		for _, id := range req.LeaseIDs {
			if cl, ok := live[id]; ok {
				cl.expiry = now.Add(c.cfg.LeaseTTL)
				resp.Renewed++
			} else {
				resp.Expired = append(resp.Expired, id)
			}
		}
	} else {
		for _, j := range c.jobs {
			for _, cl := range j.cells {
				if cl.state == cellLeased && cl.worker == req.Worker {
					cl.expiry = now.Add(c.cfg.LeaseTTL)
					resp.Renewed++
				}
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode completion: %v", err)
		return
	}
	// Canonicalize the payload so dedup hashes are encoding-independent
	// and the journaled bytes match what Journal.Record would write.
	var buf bytes.Buffer
	if err := json.Compact(&buf, req.Record); err != nil {
		httpError(w, http.StatusBadRequest, "record is not JSON: %v", err)
		return
	}
	raw := json.RawMessage(buf.Bytes())
	failed, err := recordOutcome(req.Grid, raw)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	j := c.jobs[req.Job]
	if j == nil {
		httpError(w, http.StatusNotFound, "no job %d", req.Job)
		return
	}
	var cl *cell
	for _, cand := range j.cells {
		if cand.grid == req.Grid && cand.index == req.Index {
			cl = cand
			break
		}
	}
	if cl == nil {
		httpError(w, http.StatusBadRequest, "job %d has no cell %s/%d", req.Job, req.Grid, req.Index)
		return
	}
	ws := c.ensureWorkerLocked(req.Worker, now)
	// A worker that delivers results is alive, whatever its lease
	// bookkeeping looked like; reset its breaker.
	ws.consecExpiries = 0

	if cl.state == cellDone {
		// At-least-once dispatch means late duplicates are expected
		// (heartbeat stall, redispatch racing the original). Identical
		// payloads are the determinism guarantee holding; divergent ones
		// mean a worker broke it — keep the journaled first record and
		// flag loudly.
		if experiments.DataHash(raw) == cl.hash {
			j.dupes++
			c.cfg.Logf("job %d: duplicate report for %s/%d from %q (deduplicated)", j.id, req.Grid, req.Index, req.Worker)
			writeJSON(w, http.StatusOK, completeResponse{Status: "duplicate"})
			return
		}
		j.mismatches++
		c.cfg.Logf("job %d: MISMATCHED duplicate report for %s/%d from %q — determinism violation; keeping first record",
			j.id, req.Grid, req.Index, req.Worker)
		writeJSON(w, http.StatusOK, completeResponse{Status: "mismatch"})
		return
	}

	// Journal-then-ack: a 200 means the record is on disk. A journal
	// write failure leaves the cell un-acked; the worker retries or the
	// lease expires and redispatches.
	if err := c.markDoneLocked(j, cl, raw, failed, req.Worker); err != nil {
		httpError(w, http.StatusInternalServerError, "journal: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, completeResponse{Status: "accepted"})
}
