package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Wire types of the job API. Everything is plain JSON over HTTP; the
// cell records themselves travel as the raw journal payloads
// (experiments.UniCellRecord / MPCellRecord), so a worker's report and a
// journal line carry the same bytes.

type submitResponse struct {
	ID    int `json:"id"`
	Cells int `json:"cells"`
}

type registerRequest struct {
	Worker string `json:"worker"`
}

// Lease hands one cell to one worker for TTLMillis. The full job spec
// rides along so a worker needs no job-state round trip — it can
// simulate from the lease alone. Attempt is 1-based across the cell's
// dispatch history.
type Lease struct {
	Job       int     `json:"job"`
	Grid      string  `json:"grid"`
	Index     int     `json:"index"`
	LeaseID   int64   `json:"leaseId"`
	Attempt   int     `json:"attempt"`
	TTLMillis int64   `json:"ttlMillis"`
	Spec      JobSpec `json:"spec"`
}

type leaseRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max"`
}

type leaseResponse struct {
	Leases []Lease `json:"leases,omitempty"`
	// RetryMillis, on an empty grant, is how long the worker should wait
	// before asking again (longer while quarantined).
	RetryMillis int64 `json:"retryMillis,omitempty"`
}

type heartbeatRequest struct {
	Worker string `json:"worker"`
	// LeaseIDs fences the renewal: only these leases renew, and only if
	// still held by Worker. An ID the coordinator no longer recognizes
	// (expired and swept, or re-leased to someone else) comes back in
	// Expired — the worker is fenced off that cell and should stop
	// working it. An empty list renews every lease held by Worker
	// (legacy, unfenced).
	LeaseIDs []int64 `json:"leaseIds,omitempty"`
}

type heartbeatResponse struct {
	Renewed int `json:"renewed"`
	// Expired lists requested lease IDs that could not be renewed.
	Expired []int64 `json:"expired,omitempty"`
}

type completeRequest struct {
	Worker  string          `json:"worker"`
	Job     int             `json:"job"`
	Grid    string          `json:"grid"`
	Index   int             `json:"index"`
	LeaseID int64           `json:"leaseId"`
	Record  json.RawMessage `json:"record"`
}

type completeResponse struct {
	Status string `json:"status"` // accepted, duplicate, mismatch
}

// Client is a minimal job-API client shared by the worker, the
// cmd/expserve client mode and the tests.
type Client struct {
	// Base is the coordinator URL, e.g. "http://127.0.0.1:7711".
	Base string
	// HTTP defaults to http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError is a non-2xx response; Status lets callers distinguish
// terminal rejections (4xx) from retryable conditions (429, 5xx).
type apiError struct {
	Status     int
	RetryAfter time.Duration
	Body       string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("coordinator returned %d: %s", e.Status, e.Body)
}

// retryable reports whether err is worth retrying: network errors and
// 429/5xx are, other API rejections are terminal.
func retryable(err error) bool {
	if ae, ok := err.(*apiError); ok {
		return ae.Status == http.StatusTooManyRequests || ae.Status >= 500
	}
	return true // transport error: coordinator down or restarting
}

// RetryAfter classifies err for submit-style callers: retry reports
// whether the call is worth repeating, wait how long to back off first —
// the server's Retry-After when the rejection carried one (429
// backpressure), a transport-level default otherwise.
func RetryAfter(err error) (wait time.Duration, retry bool) {
	if !retryable(err) {
		return 0, false
	}
	wait = 500 * time.Millisecond
	if ae, ok := err.(*apiError); ok && ae.RetryAfter > 0 {
		wait = ae.RetryAfter
	}
	return wait, true
}

// call POSTs in (or GETs when in is nil) and decodes the JSON response
// into out.
func (c *Client) call(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	// 202 ("still running", from /result) is deliberately an error here:
	// its body is a JobStatus, not the caller's out type.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		ae := &apiError{Status: resp.StatusCode, Body: string(bytes.TrimSpace(data))}
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil {
				ae.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return ae
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit posts a job spec and returns its id and cell count.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (id, cells int, err error) {
	var resp submitResponse
	if err := c.call(ctx, http.MethodPost, "/api/jobs", spec, &resp); err != nil {
		return 0, 0, err
	}
	return resp.ID, resp.Cells, nil
}

// Status fetches a job's progress.
func (c *Client) Status(ctx context.Context, job int) (JobStatus, error) {
	var st JobStatus
	err := c.call(ctx, http.MethodGet, fmt.Sprintf("/api/jobs/%d", job), nil, &st)
	return st, err
}

// Result fetches a completed job's result; an incomplete job returns a
// 202 apiError.
func (c *Client) Result(ctx context.Context, job int) (JobResult, error) {
	var res JobResult
	err := c.call(ctx, http.MethodGet, fmt.Sprintf("/api/jobs/%d/result", job), nil, &res)
	if err == nil && len(res.JSON) > 0 {
		// encoding/json compacts an embedded RawMessage when the response
		// is marshaled, flattening the coordinator's MarshalIndent output.
		// Re-indenting restores it byte-for-byte: MarshalIndent is Marshal
		// followed by Indent, and both sides HTML-escape identically.
		var buf bytes.Buffer
		if ierr := json.Indent(&buf, res.JSON, "", "  "); ierr == nil {
			res.JSON = buf.Bytes()
		}
	}
	return res, err
}

// WaitResult polls until the job completes and returns its result,
// riding out coordinator restarts: transport errors retry (the job's
// journal survives the process, and a restarting coordinator presents
// as a refused connection, not a status code). Any API status other
// than 202 ("still running") and 429 is terminal — in particular a 500
// from /result carries the job's assembly error and retrying it would
// loop forever. poll <= 0 defaults to 200ms.
func (c *Client) WaitResult(ctx context.Context, job int, poll time.Duration) (JobResult, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		res, err := c.Result(ctx, job)
		if err == nil {
			return res, nil
		}
		if ae, ok := err.(*apiError); ok {
			if ae.Status != http.StatusAccepted && ae.Status != http.StatusTooManyRequests {
				return JobResult{}, err
			}
		}
		select {
		case <-ctx.Done():
			return JobResult{}, ctx.Err()
		case <-time.After(poll):
		}
	}
}
