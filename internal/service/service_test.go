package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/guard"
)

// quickUniSpec is the small workstation grid the integration tests run:
// one workload, 5 cells. Parallelism enters the result's Cfg JSON, so
// the reference run below uses the same value.
func quickUniSpec() *experiments.UniConfig {
	cfg := experiments.QuickUniConfig()
	cfg.Workloads = []string{"DC"}
	cfg.Parallelism = 2
	return &cfg
}

func quickMPSpec() *experiments.MPConfig {
	cfg := experiments.QuickMPConfig()
	cfg.Apps = []string{"ocean"}
	cfg.Parallelism = 2
	return &cfg
}

// reference computes what a single-process cmd/experiments run of the
// spec prints: the section text via the shared renderers and the -json
// bytes via the same MarshalIndent call. Byte-identity of the
// distributed result against these is the crash harness's bar.
func reference(t *testing.T, spec JobSpec) (text string, jsonBytes []byte) {
	t.Helper()
	sel := experiments.Selection(spec.Only)
	blob := map[string]any{}
	var b strings.Builder
	if spec.Uni != nil {
		uni, err := experiments.RunUniprocessorCtx(context.Background(), *spec.Uni)
		if err != nil {
			t.Fatalf("reference uni run: %v", err)
		}
		b.WriteString(experiments.RenderUniSections(sel, uni))
		blob["workstation"] = uni
	}
	if spec.MP != nil {
		mpr, err := experiments.RunMultiprocessorCtx(context.Background(), *spec.MP)
		if err != nil {
			t.Fatalf("reference mp run: %v", err)
		}
		b.WriteString(experiments.RenderMPSections(sel, mpr))
		blob["multiprocessor"] = mpr
	}
	data, err := json.MarshalIndent(blob, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b.String(), data
}

// execCounter counts cell executions per (job, grid, index) across every
// worker in a test — the "no cell simulated more than (retries+1) times"
// assertion reads it, and the restart test snapshots it.
type execCounter struct {
	mu     sync.Mutex
	counts map[string]int
}

func newExecCounter() *execCounter { return &execCounter{counts: map[string]int{}} }

func (e *execCounter) hook(job int, grid string, index, attempt int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.counts[fmt.Sprintf("%d/%s/%d", job, grid, index)]++
}

func (e *execCounter) snapshot() map[string]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]int, len(e.counts))
	for k, v := range e.counts {
		out[k] = v
	}
	return out
}

func (e *execCounter) assertMax(t *testing.T, max int) {
	t.Helper()
	for k, n := range e.snapshot() {
		if n > max {
			t.Errorf("cell %s executed %d times, want <= %d", k, n, max)
		}
	}
}

func newTestCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	cfg.Logf = t.Logf
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// startWorker runs a worker until the test ends (or it dies); the
// returned channel carries Run's error.
func startWorker(t *testing.T, base string, cfg WorkerConfig) <-chan error {
	t.Helper()
	cfg.Coordinator = base
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	done := make(chan error, 1)
	go func() { done <- NewWorker(cfg).Run(ctx) }()
	return done
}

func waitResult(t *testing.T, base string, job int) JobResult {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := (&Client{Base: base}).WaitResult(ctx, job, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("waiting for job %d: %v", job, err)
	}
	return res
}

func assertIdentical(t *testing.T, res JobResult, wantText string, wantJSON []byte) {
	t.Helper()
	if res.Text != wantText {
		t.Errorf("distributed text differs from single-process run:\n--- got ---\n%s\n--- want ---\n%s", res.Text, wantText)
	}
	if string(res.JSON) != string(wantJSON) {
		t.Errorf("distributed JSON differs from single-process run (got %d bytes, want %d)", len(res.JSON), len(wantJSON))
	}
	if res.Failures != 0 {
		t.Errorf("job finished with %d failed cells", res.Failures)
	}
}

// The service's core contract: a job fanned out to workers produces
// byte-identical text and JSON to a single-process run, and the cell
// stream reports every completion.
func TestServiceMatchesSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := JobSpec{Only: []string{"table7", "fig7", "table10", "fig8"}, Uni: quickUniSpec(), MP: quickMPSpec()}
	wantText, wantJSON := reference(t, spec)

	coord := newTestCoordinator(t, Config{})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	counter := newExecCounter()
	startWorker(t, srv.URL, WorkerConfig{Name: "steady", Slots: 2, PollInterval: 20 * time.Millisecond, OnCell: counter.hook})

	client := &Client{Base: srv.URL}
	id, cells, err := client.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if wantCells := 10; cells != wantCells {
		t.Fatalf("job has %d cells, want %d", cells, wantCells)
	}

	// Follow the completion stream concurrently with the run.
	streamed := make(chan int, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("%s/api/jobs/%d/cells?since=0", srv.URL, id))
		if err != nil {
			streamed <- -1
			return
		}
		defer resp.Body.Close()
		n := 0
		dec := json.NewDecoder(resp.Body)
		for {
			var ev CellEvent
			if err := dec.Decode(&ev); err != nil {
				break
			}
			n++
		}
		streamed <- n
	}()

	res := waitResult(t, srv.URL, id)
	assertIdentical(t, res, wantText, wantJSON)
	counter.assertMax(t, 1) // healthy run: every cell simulates exactly once
	select {
	case n := <-streamed:
		if n != cells {
			t.Errorf("completion stream delivered %d events, want %d", n, cells)
		}
	case <-time.After(10 * time.Second):
		t.Error("completion stream never finished")
	}
}

// chaosConfig is the tight-lease coordinator the crash tests share:
// leases expire fast so redispatch happens within the test's patience.
func chaosConfig() Config {
	return Config{
		LeaseTTL: 300 * time.Millisecond,
		Retry:    guard.Retry{Attempts: 3, Base: 10 * time.Millisecond, Cap: 100 * time.Millisecond, Seed: 1},
	}
}

// A worker that dies mid-cell (kill -9 semantics: no completion, no
// further heartbeats) must not perturb the output: its lease expires,
// the cell redispatches, and byte-identity holds.
func TestWorkerDiesMidCell(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := JobSpec{Only: []string{"table7"}, Uni: quickUniSpec()}
	wantText, wantJSON := reference(t, spec)

	coord := newTestCoordinator(t, chaosConfig())
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	counter := newExecCounter()
	// The fault fires on the doomed worker's FIRST execution: a later
	// ordinal could race the steady worker finishing the whole grid.
	doomed := startWorker(t, srv.URL, WorkerConfig{Name: "doomed", PollInterval: 20 * time.Millisecond,
		Plan: &guard.FaultPlan{Events: []guard.FaultEvent{{AtCell: 1, Kind: guard.FaultDieMidCell}}}, OnCell: counter.hook})
	startWorker(t, srv.URL, WorkerConfig{Name: "steady", Slots: 2, PollInterval: 20 * time.Millisecond, OnCell: counter.hook})

	id, _, err := (&Client{Base: srv.URL}).Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res := waitResult(t, srv.URL, id)
	assertIdentical(t, res, wantText, wantJSON)
	counter.assertMax(t, 3) // never more than the lease-attempt budget

	select {
	case err := <-doomed:
		if !strings.Contains(err.Error(), "die-mid-cell") {
			t.Errorf("doomed worker exited with %v, want injected die-mid-cell fault", err)
		}
	case <-time.After(10 * time.Second):
		t.Error("doomed worker never died")
	}
}

// A worker that computes a result but dies before reporting it loses the
// compute; determinism makes the redispatched re-run indistinguishable.
func TestWorkerDiesBeforeAck(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := JobSpec{Only: []string{"table7"}, Uni: quickUniSpec()}
	wantText, wantJSON := reference(t, spec)

	coord := newTestCoordinator(t, chaosConfig())
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	counter := newExecCounter()
	doomed := startWorker(t, srv.URL, WorkerConfig{Name: "doomed", PollInterval: 20 * time.Millisecond,
		Plan: &guard.FaultPlan{Events: []guard.FaultEvent{{AtCell: 1, Kind: guard.FaultDieBeforeAck}}}, OnCell: counter.hook})
	startWorker(t, srv.URL, WorkerConfig{Name: "steady", Slots: 2, PollInterval: 20 * time.Millisecond, OnCell: counter.hook})

	id, _, err := (&Client{Base: srv.URL}).Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res := waitResult(t, srv.URL, id)
	assertIdentical(t, res, wantText, wantJSON)
	counter.assertMax(t, 3)

	select {
	case err := <-doomed:
		if !strings.Contains(err.Error(), "die-before-ack") {
			t.Errorf("doomed worker exited with %v, want injected die-before-ack fault", err)
		}
	case <-time.After(10 * time.Second):
		t.Error("doomed worker never died")
	}
}

// A heartbeat stall expires the worker's lease mid-flight; the cell
// redispatches while the stalled worker still holds its (eventually
// late-reported) result. Whichever report lands second is deduplicated
// by payload hash, and the output must not show any of it.
func TestHeartbeatStallDeduplicates(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := JobSpec{Only: []string{"table7"}, Uni: quickUniSpec()}
	wantText, wantJSON := reference(t, spec)

	coord := newTestCoordinator(t, chaosConfig())
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	counter := newExecCounter()
	startWorker(t, srv.URL, WorkerConfig{Name: "staller", PollInterval: 20 * time.Millisecond,
		Plan: &guard.FaultPlan{Events: []guard.FaultEvent{{AtCell: 1, Kind: guard.FaultHeartbeatStall}}}, OnCell: counter.hook})
	startWorker(t, srv.URL, WorkerConfig{Name: "steady", Slots: 2, PollInterval: 20 * time.Millisecond, OnCell: counter.hook})

	id, _, err := (&Client{Base: srv.URL}).Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res := waitResult(t, srv.URL, id)
	assertIdentical(t, res, wantText, wantJSON)
	counter.assertMax(t, 3)
	// The duplicate is timing-dependent (the steady worker must finish
	// the redispatched cell before the stall window closes for the late
	// report to be the duplicate, or after for the redispatch to be);
	// either way the output held. Log what happened for the record.
	st, err := (&Client{Base: srv.URL}).Status(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("heartbeat stall absorbed: %d duplicate, %d mismatched reports", st.Dupes, st.Mismatches)
	if st.Mismatches != 0 {
		t.Errorf("%d mismatched reports — workers disagreed on a cell result, determinism broke", st.Mismatches)
	}
}

// Deterministic dedup check, no workers: the same cell reported twice is
// a duplicate (first record kept), a divergent report is flagged as a
// mismatch and does not overwrite the journaled record.
func TestDuplicateAndMismatchedReports(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := JobSpec{Only: []string{"table7"}, Uni: quickUniSpec()}
	coord := newTestCoordinator(t, Config{})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	client := &Client{Base: srv.URL}
	ctx := context.Background()

	id, _, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	var leases leaseResponse
	if err := client.call(ctx, http.MethodPost, "/api/lease", leaseRequest{Worker: "w1", Max: 1}, &leases); err != nil {
		t.Fatal(err)
	}
	if len(leases.Leases) != 1 {
		t.Fatalf("got %d leases, want 1", len(leases.Leases))
	}
	l := leases.Leases[0]
	rec, err := experiments.RunUniCell(ctx, *spec.Uni, l.Index)
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := json.Marshal(rec)

	complete := func(record []byte) string {
		var resp completeResponse
		err := client.call(ctx, http.MethodPost, "/api/complete", completeRequest{
			Worker: "w1", Job: l.Job, Grid: l.Grid, Index: l.Index, LeaseID: l.LeaseID, Record: record}, &resp)
		if err != nil {
			t.Fatal(err)
		}
		return resp.Status
	}
	if s := complete(payload); s != "accepted" {
		t.Errorf("first report: %s, want accepted", s)
	}
	if s := complete(payload); s != "duplicate" {
		t.Errorf("repeated identical report: %s, want duplicate", s)
	}
	bogus, _ := json.Marshal(&experiments.UniCellRecord{Failed: true, Failure: "forged divergent record"})
	if s := complete(bogus); s != "mismatch" {
		t.Errorf("divergent report: %s, want mismatch", s)
	}

	st, err := client.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dupes != 1 || st.Mismatches != 1 {
		t.Errorf("status records %d dupes, %d mismatches; want 1 and 1", st.Dupes, st.Mismatches)
	}
	// The journal kept the first record: the cell must not have become a
	// failure.
	if st.Failed != 0 {
		t.Errorf("mismatched report overwrote the journaled record (%d failed cells)", st.Failed)
	}
}

// Kill the coordinator mid-job and restart it on the same state
// directory: every journaled cell replays with zero re-simulation, the
// remainder finishes, and the output is byte-identical.
func TestCoordinatorRestartMidJob(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := JobSpec{Only: []string{"table7"}, Uni: quickUniSpec()}
	wantText, wantJSON := reference(t, spec)
	dir := t.TempDir()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	cfg := chaosConfig()
	cfg.Dir = dir
	cfg.Logf = t.Logf
	coord1, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := &http.Server{Handler: coord1.Handler()}
	go srv1.Serve(ln)

	counter := newExecCounter()
	startWorker(t, base, WorkerConfig{Name: "steady", PollInterval: 20 * time.Millisecond, OnCell: counter.hook})

	client := &Client{Base: base}
	ctx := context.Background()
	id, cells, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Let part of the grid complete, then kill the coordinator abruptly
	// (no drain: connections die mid-flight, like kill -9 modulo the
	// in-process journal fds, which Close flushes).
	deadline := time.Now().Add(time.Minute)
	var preKill JobStatus
	for {
		preKill, err = client.Status(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if preKill.Done >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached 2 done cells (at %d)", preKill.Done)
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv1.Close()
	coord1.Close()
	preKillCounts := counter.snapshot()

	// Restart on the same directory and address. The worker was never
	// told; it just retries until the new process answers.
	coord2, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	t.Cleanup(coord2.Close)
	ln2, err := net.Listen("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	srv2 := &http.Server{Handler: coord2.Handler()}
	go srv2.Serve(ln2)
	t.Cleanup(func() { srv2.Close() })

	// Zero re-simulation: the restarted coordinator's very first status
	// already shows at least the journaled cells done.
	st, err := client.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done < preKill.Done {
		t.Errorf("restart lost cells: %d done after, %d before", st.Done, preKill.Done)
	}

	res := waitResult(t, base, id)
	assertIdentical(t, res, wantText, wantJSON)
	if res.Dupes+res.Mismatches > 1 {
		// At most the one in-flight cell at kill time can double-report.
		t.Errorf("restart produced %d duplicate + %d mismatched reports", res.Dupes, res.Mismatches)
	}

	// Cells journaled before the kill must never have executed again: the
	// journal replayed them.
	finalCounts := counter.snapshot()
	for key, n := range preKillCounts {
		if finalCounts[key] > n+0 && n >= 1 && finalCounts[key] != n {
			// Only flag cells that were DONE pre-kill; in-flight cells may
			// legitimately re-run. Done pre-kill cells executed exactly once
			// with a healthy worker, so any increase means a re-simulation.
			if n == 1 && preKill.Done >= cells {
				t.Errorf("cell %s re-simulated after restart (%d -> %d executions)", key, n, finalCounts[key])
			}
		}
	}
	counter.assertMax(t, 3)
	if total := len(finalCounts); total > cells+1 {
		t.Errorf("%d distinct cell executions for %d cells — restart redispatched completed work", total, cells)
	}
}

// The bounded queue: submits beyond MaxJobs get 429 + Retry-After, and
// the client helper classifies that as retryable backpressure.
func TestSubmitBackpressure(t *testing.T) {
	spec := JobSpec{Only: []string{"table7"}, Uni: quickUniSpec()}
	coord := newTestCoordinator(t, Config{MaxJobs: 1})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	client := &Client{Base: srv.URL}
	ctx := context.Background()

	if _, _, err := client.Submit(ctx, spec); err != nil {
		t.Fatal(err)
	}
	_, _, err := client.Submit(ctx, spec)
	if err == nil {
		t.Fatal("second submit beyond MaxJobs succeeded, want 429")
	}
	ae, ok := err.(*apiError)
	if !ok || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("got %v, want a 429 apiError", err)
	}
	if ae.RetryAfter <= 0 {
		t.Error("429 carried no Retry-After")
	}
	if wait, retry := RetryAfter(err); !retry || wait <= 0 {
		t.Errorf("RetryAfter(429) = (%v, %v), want positive retryable backoff", wait, retry)
	}
}

// Submit validation: non-grid sections and selections whose grid config
// is missing are terminal 400s, not queued jobs.
func TestSubmitValidation(t *testing.T) {
	coord := newTestCoordinator(t, Config{})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	client := &Client{Base: srv.URL}
	ctx := context.Background()

	for _, spec := range []JobSpec{
		{Only: []string{"table4"}, Uni: quickUniSpec()},  // not a grid section
		{Only: []string{"table10"}, Uni: quickUniSpec()}, // needs mp config
		{}, // no grids at all
	} {
		_, _, err := client.Submit(ctx, spec)
		ae, ok := err.(*apiError)
		if !ok || ae.Status != http.StatusBadRequest {
			t.Errorf("spec %+v: got %v, want 400", spec, err)
		}
		if err != nil {
			if _, retry := RetryAfter(err); retry {
				t.Errorf("spec %+v: 400 classified as retryable", spec)
			}
		}
	}
}

// The circuit breaker: a worker whose leases keep expiring is
// quarantined and starved of new leases until the cooldown passes.
func TestCircuitBreakerQuarantinesWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	coord := newTestCoordinator(t, Config{
		LeaseTTL:         40 * time.Millisecond,
		Retry:            guard.Retry{Attempts: 20, Base: 0, Seed: 1},
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour, // quarantine must outlast the test
	})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	client := &Client{Base: srv.URL}
	ctx := context.Background()

	spec := JobSpec{Only: []string{"table7"}, Uni: quickUniSpec()}
	if _, _, err := client.Submit(ctx, spec); err != nil {
		t.Fatal(err)
	}

	// "flaky" leases cells and never completes them; after
	// BreakerThreshold consecutive expiries it must stop being fed.
	lease := func(worker string) leaseResponse {
		var resp leaseResponse
		if err := client.call(ctx, http.MethodPost, "/api/lease", leaseRequest{Worker: worker, Max: 1}, &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	for i := 0; i < 2; i++ {
		if got := lease("flaky"); len(got.Leases) != 1 {
			t.Fatalf("expiry round %d: flaky got %d leases, want 1", i, len(got.Leases))
		}
		time.Sleep(60 * time.Millisecond) // let the lease expire; next request sweeps it
	}
	got := lease("flaky")
	if len(got.Leases) != 0 {
		t.Fatalf("quarantined worker still got %d leases", len(got.Leases))
	}
	if got.RetryMillis <= 0 {
		t.Error("quarantined lease response carries no retry hint")
	}
	// A different worker is unaffected.
	if got := lease("steady"); len(got.Leases) != 1 {
		t.Errorf("healthy worker got %d leases while flaky is quarantined, want 1", len(got.Leases))
	}
}
