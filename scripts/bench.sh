#!/bin/sh
# Performance measurement: Go micro/macro benchmarks plus the throughput
# grid (cmd/bench), written to BENCH_<n>.json for regression tracking.
#
# Usage:
#   scripts/bench.sh                    # benchmarks + current-grid JSON
#   BASE_REF=<rev> scripts/bench.sh     # also rebuild cmd/bench at <rev>
#                                       # in a throwaway worktree and embed
#                                       # that run as the baseline, with
#                                       # per-cell speedups
#   BENCH_OUT=BENCH_2.json scripts/bench.sh   # choose the output file
#
# The committed BENCH_1.json was produced with BASE_REF set to the
# revision preceding the fast-forward engine, so its speedup_vs_baseline
# table measures the whole optimization stack.
set -eu

cd "$(dirname "$0")/.."

OUT=${BENCH_OUT:-BENCH_1.json}

# Go benchmarks: the serial-vs-parallel experiment grids, simulator
# throughput, the fast-forward engine A/B, and the functional-memory
# fast path.
go test -run='^$' -bench='Table7|Table10|SimulatorThroughput|MPSimulatorThroughput' -benchtime=1x .
go test -run='^$' -bench='BenchmarkStepFastForward' -benchtime=2s ./internal/core/
go test -run='^$' -bench='BenchmarkMemAccess' -benchtime=1s ./internal/mem/

COMMIT=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

if [ -n "${BASE_REF:-}" ]; then
    BASEDIR=$(mktemp -d /tmp/bench-base.XXXXXX)
    BASEJSON=$BASEDIR/baseline.json
    trap 'git worktree remove --force "$BASEDIR/wt" 2>/dev/null || true; rm -rf "$BASEDIR"' EXIT
    git worktree add --detach "$BASEDIR/wt" "$BASE_REF"
    # The bench tool is self-contained so the identical source builds
    # against the old revision's internals.
    cp -r cmd/bench "$BASEDIR/wt/cmd/"
    (cd "$BASEDIR/wt" && go run ./cmd/bench \
        -label "baseline-$BASE_REF" -commit "$(git rev-parse --short "$BASE_REF")" \
        -out "$BASEJSON")
    go run ./cmd/bench -commit "$COMMIT" -baseline "$BASEJSON" -out "$OUT"
else
    go run ./cmd/bench -commit "$COMMIT" -out "$OUT"
fi

echo "wrote $OUT"
