#!/bin/sh
# Performance measurement: Go micro/macro benchmarks plus the throughput
# grid (cmd/bench), written to BENCH_<n>.json for regression tracking.
#
# Usage:
#   scripts/bench.sh                    # benchmarks + current-grid JSON
#   BASE_REF=<rev> scripts/bench.sh     # also rebuild cmd/bench at <rev>
#                                       # in a throwaway worktree and embed
#                                       # that run as the baseline, with
#                                       # per-cell speedups
#   BENCH_OUT=BENCH_2.json scripts/bench.sh   # choose the output file
#   SWEEPS=1 scripts/bench.sh           # sweep-level wall-clock benchmark:
#                                       # every sensitivity sweep timed
#                                       # forked vs -no-checkpoint in one
#                                       # binary (exits 1 unless outputs
#                                       # are byte-identical)
#
# The committed BENCH_1.json was produced with BASE_REF set to the
# revision preceding the fast-forward engine, so its speedup_vs_baseline
# table measures the whole optimization stack. BENCH_3.json was produced
# with SWEEPS=1 BENCH_OUT=BENCH_3.json and records the shared-warm-up
# forking speedups (the scratch leg of each pair is the baseline, so no
# old-revision worktree is needed). BENCH_4.json was produced with
# BASE_REF set to the revision preceding the internal/engine block-loop
# unification; its geomean near 1.0 shows the shared engine kept the
# detached hot path branch-free (MIN_GEOMEAN, default 0.97, enforces
# this whenever BASE_REF is given).
set -eu

cd "$(dirname "$0")/.."

if [ -n "${SWEEPS:-}" ]; then
    OUT=${BENCH_OUT:-BENCH_3.json}
    COMMIT=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
    go run ./cmd/bench -sweeps -commit "$COMMIT" -out "$OUT"
    echo "wrote $OUT"
    exit 0
fi

OUT=${BENCH_OUT:-BENCH_1.json}

# Go benchmarks: the serial-vs-parallel experiment grids, simulator
# throughput, the fast-forward engine A/B, and the functional-memory
# fast path.
go test -run='^$' -bench='Table7|Table10|SimulatorThroughput|MPSimulatorThroughput' -benchtime=1x .
go test -run='^$' -bench='BenchmarkStepFastForward' -benchtime=2s ./internal/core/
go test -run='^$' -bench='BenchmarkMemAccess' -benchtime=1s ./internal/mem/

COMMIT=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

if [ -n "${BASE_REF:-}" ]; then
    BASEDIR=$(mktemp -d /tmp/bench-base.XXXXXX)
    BASEJSON=$BASEDIR/baseline.json
    trap 'git worktree remove --force "$BASEDIR/wt" 2>/dev/null || true; rm -rf "$BASEDIR"' EXIT
    git worktree add --detach "$BASEDIR/wt" "$BASE_REF"
    # The bench tool is self-contained so the identical source builds
    # against the old revision's internals.
    cp -r cmd/bench "$BASEDIR/wt/cmd/"
    (cd "$BASEDIR/wt" && go run ./cmd/bench \
        -label "baseline-$BASE_REF" -commit "$(git rev-parse --short "$BASE_REF")" \
        -out "$BASEJSON")
    # MIN_GEOMEAN guards against refactor-induced slowdowns: the run fails
    # unless the geomean of per-cell speedups vs BASE_REF stays above it.
    go run ./cmd/bench -commit "$COMMIT" -baseline "$BASEJSON" \
        -min-geomean "${MIN_GEOMEAN:-0.97}" -out "$OUT"
else
    go run ./cmd/bench -commit "$COMMIT" -out "$OUT"
fi

echo "wrote $OUT"
