#!/bin/sh
# Full verification: vet, build, and the whole test suite under the race
# detector (the experiment engine fans simulation cells out across
# goroutines, so races here are correctness bugs, not just flakes).
# Tier-1 (ROADMAP.md) is the subset `go build ./... && go test ./...`.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...

# Second pass with the invariant checkers armed (GUARD_CHECKS=1 turns on
# the coherence/cache/pipeline audits in every guarded run). The env gate
# is read once per process, so this must be a separate test invocation.
GUARD_CHECKS=1 go test ./...

# Engine equivalence: the three block-loop drivers (core, workstation,
# mp) all run on internal/engine; the golden grid pins their outputs —
# stats, metrics streams, checkpoint/resume — to digests captured from
# the pre-unification hand-rolled loops. Any drift in guard cadence,
# sampling, cancellation, or watchdog behavior fails here first.
go test -count=1 -run 'TestEngineGolden' ./internal/engine

# Chaos-mode determinism: perturb all memory/network latencies on a
# race-free app and assert the final memory is byte-identical to the
# unperturbed run (mpsim runs the reference config itself and fails on
# divergence).
go run ./cmd/mpsim -app ocean -scheme interleaved -contexts 2 -procs 2 -steps 1 -chaos 20260805 >/dev/null
go run ./cmd/mpsim -app barnes -scheme blocked -contexts 2 -procs 2 -steps 1 -chaos 7 -check-invariants >/dev/null

# Observability pass: run a small grid with the metrics/trace exporters on
# and validate every emitted file against the documented schemas
# (JSON-lines per internal/metrics/export.go; Chrome trace_event phases).
OBS_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_DIR"' EXIT
go run ./cmd/uniprog -workload R0 -scheme interleaved -contexts 2 \
    -rotations 1 -slice 8000 \
    -metrics-out "$OBS_DIR/uni.jsonl" -trace-out "$OBS_DIR/uni.json" >/dev/null
go run ./cmd/mpsim -app mp3d -scheme interleaved -contexts 2 -procs 2 -steps 1 \
    -metrics-out "$OBS_DIR/mp.jsonl" -trace-out "$OBS_DIR/mp.json" >/dev/null
go run ./cmd/obscheck "$OBS_DIR"/*.jsonl "$OBS_DIR"/*.json

# Interrupt-resume determinism: run a quick grid to completion, run it
# again but raise a real SIGINT after 3 journaled cells (-interrupt-after
# exercises the same signal path an operator's Ctrl-C does; expected exit
# code 3), then resume the partial journal and require the resumed table
# and -json output to be byte-identical to the uninterrupted run.
RES_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_DIR" "$RES_DIR"' EXIT
# A real binary, not `go run`: go run collapses any non-zero child exit
# to its own exit 1, which would hide the documented code 3.
go build -o "$RES_DIR/experiments" ./cmd/experiments
"$RES_DIR/experiments" -quick -only table7 -j 2 \
    -json "$RES_DIR/full.json" -journal "$RES_DIR/full.journal" > "$RES_DIR/full.txt"
code=0
"$RES_DIR/experiments" -quick -only table7 -j 2 \
    -json "$RES_DIR/part.json" -journal "$RES_DIR/part.journal" \
    -interrupt-after 3 > "$RES_DIR/part.txt" || code=$?
[ "$code" -eq 3 ] # documented "interrupted" exit code
"$RES_DIR/experiments" -quick -only table7 -j 2 \
    -json "$RES_DIR/resumed.json" -resume "$RES_DIR/part.journal" > "$RES_DIR/resumed.txt"
diff "$RES_DIR/full.txt" "$RES_DIR/resumed.txt"
diff "$RES_DIR/full.json" "$RES_DIR/resumed.json"

# Optional differential-fuzz pass: FUZZ=1 scripts/check.sh runs the
# fixed-seed cross-scheme interleaving sweep (>=500 cells; exits 1 on any
# divergence), requires the report to be byte-identical at -j 8 and -j 1,
# and replays the checked-in reproducer (a deliberately broken TAS),
# which must still fail with the documented divergence exit code 1.
if [ -n "${FUZZ:-}" ]; then
    FUZZ_DIR="$(mktemp -d)"
    trap 'rm -rf "$OBS_DIR" "$RES_DIR" "$FUZZ_DIR"' EXIT
    go build -o "$FUZZ_DIR/interleavefuzz" ./cmd/interleavefuzz
    "$FUZZ_DIR/interleavefuzz" -n 12 -seed 20260808 -j 8 > "$FUZZ_DIR/j8.txt"
    "$FUZZ_DIR/interleavefuzz" -n 12 -seed 20260808 -j 1 > "$FUZZ_DIR/j1.txt"
    diff "$FUZZ_DIR/j8.txt" "$FUZZ_DIR/j1.txt"
    code=0
    "$FUZZ_DIR/interleavefuzz" -quick \
        -replay internal/fuzz/testdata/corpus/fuzz-d6927cc28841f924 \
        > "$FUZZ_DIR/replay.txt" || code=$?
    [ "$code" -eq 1 ] # divergence must reproduce
fi

# Optional checkpoint pass: CKPT=1 scripts/check.sh requires a forked
# sweep run (the default) to be byte-identical to -no-checkpoint, both
# in the tables and the -json dump; then re-runs with a persistent
# -checkpoint-dir, corrupts every checkpoint file in place, and requires
# the next run to detect the typed codec error, fall back to cycle-0
# simulation, and still produce identical output.
if [ -n "${CKPT:-}" ]; then
    CKPT_DIR="$(mktemp -d)"
    trap 'rm -rf "$OBS_DIR" "$RES_DIR" "$CKPT_DIR"' EXIT
    go build -o "$CKPT_DIR/experiments" ./cmd/experiments
    "$CKPT_DIR/experiments" -quick -only sweeps -j 2 -no-checkpoint \
        -json "$CKPT_DIR/scratch.json" > "$CKPT_DIR/scratch.txt"
    "$CKPT_DIR/experiments" -quick -only sweeps -j 2 \
        -json "$CKPT_DIR/forked.json" > "$CKPT_DIR/forked.txt"
    diff "$CKPT_DIR/scratch.txt" "$CKPT_DIR/forked.txt"
    diff "$CKPT_DIR/scratch.json" "$CKPT_DIR/forked.json"

    "$CKPT_DIR/experiments" -quick -only sweeps -j 2 \
        -checkpoint-dir "$CKPT_DIR/ckpts" \
        -json "$CKPT_DIR/dir.json" > "$CKPT_DIR/dir.txt"
    diff "$CKPT_DIR/scratch.txt" "$CKPT_DIR/dir.txt"
    ls "$CKPT_DIR/ckpts"/*.ckpt >/dev/null # warm-up prefixes were persisted
    for f in "$CKPT_DIR/ckpts"/*.ckpt; do
        # Flip a byte mid-file: the codec must reject it (ErrCorrupt),
        # drop the cached prefix, and re-simulate from cycle 0.
        sz=$(wc -c < "$f")
        printf '\377' | dd of="$f" bs=1 seek=$((sz / 2)) conv=notrunc 2>/dev/null
    done
    "$CKPT_DIR/experiments" -quick -only sweeps -j 2 \
        -checkpoint-dir "$CKPT_DIR/ckpts" \
        -json "$CKPT_DIR/corrupt.json" > "$CKPT_DIR/corrupt.txt"
    diff "$CKPT_DIR/scratch.txt" "$CKPT_DIR/corrupt.txt"
    diff "$CKPT_DIR/scratch.json" "$CKPT_DIR/corrupt.json"
fi

# Optional distributed-service pass: SERVICE=1 scripts/check.sh runs the
# same quick table7 grid under the expserve coordinator with two chaos
# events — one worker killed by an injected fault on its first cell
# (documented exit 7) and the coordinator kill -9'd and restarted once on
# the same state dir and address — then requires the service's tables and
# -json output to be byte-identical to the single-process run above.
if [ -n "${SERVICE:-}" ]; then
    SVC_DIR="$(mktemp -d)"
    trap 'rm -rf "$OBS_DIR" "$RES_DIR" "$SVC_DIR"' EXIT
    go build -o "$SVC_DIR/expserve" ./cmd/expserve
    go build -o "$SVC_DIR/expworker" ./cmd/expworker

    # Coordinator: port 0 picks a free port, -addr-file publishes it.
    "$SVC_DIR/expserve" serve -dir "$SVC_DIR/state" -addr 127.0.0.1:0 \
        -addr-file "$SVC_DIR/addr" -lease-ttl 2s 2> "$SVC_DIR/serve1.log" &
    SERVE_PID=$!
    for _ in $(seq 1 100); do [ -s "$SVC_DIR/addr" ] && break; sleep 0.1; done
    ADDR="http://$(cat "$SVC_DIR/addr")"

    # One worker dies abruptly on its first cell; the survivor does the
    # real work (the dead worker's lease expires and redispatches).
    "$SVC_DIR/expworker" -coordinator "$ADDR" -name doomed -poll 100ms \
        -fault die-mid-cell@1 2> "$SVC_DIR/doomed.log" &
    DOOMED_PID=$!
    "$SVC_DIR/expworker" -coordinator "$ADDR" -name steady -slots 2 -poll 100ms \
        2> "$SVC_DIR/steady.log" &
    STEADY_PID=$!

    JOB=$("$SVC_DIR/expserve" submit -coordinator "$ADDR" -quick -only table7 -j 2)

    # Kill -9 the coordinator mid-job and restart it on the same state
    # dir and address: the journal resumes the job with zero
    # re-simulation, the workers just retry until the new process answers.
    sleep 1
    kill -9 "$SERVE_PID"
    wait "$SERVE_PID" || true
    "$SVC_DIR/expserve" serve -dir "$SVC_DIR/state" -addr "$(cat "$SVC_DIR/addr")" \
        -lease-ttl 2s 2> "$SVC_DIR/serve2.log" &
    SERVE_PID=$!

    "$SVC_DIR/expserve" wait -coordinator "$ADDR" -job "$JOB" \
        -out "$SVC_DIR/svc.txt" -json-out "$SVC_DIR/svc.json"

    # Byte-identity against the single-process reference run above.
    diff "$RES_DIR/full.txt" "$SVC_DIR/svc.txt"
    diff "$RES_DIR/full.json" "$SVC_DIR/svc.json"

    # The doomed worker died by its injected fault: documented exit 7.
    wcode=0; wait "$DOOMED_PID" || wcode=$?
    [ "$wcode" -eq 7 ]
    # Worker and coordinator drain cleanly on SIGTERM (exit 3 / 0).
    kill "$STEADY_PID"
    wcode=0; wait "$STEADY_PID" || wcode=$?
    [ "$wcode" -eq 3 ]
    kill "$SERVE_PID"
    wcode=0; wait "$SERVE_PID" || wcode=$?
    [ "$wcode" -eq 0 ]
fi

# Optional torture pass: TORTURE=1 scripts/check.sh runs the cmd/torture
# harness over 20 fixed seeds — each seed a deterministic disk fault
# schedule under the coordinator's journals (torn write / failed sync /
# ENOSPC, followed by a crash-restart from the fsync-accurate crash
# image) plus seeded network faults (drop, delay, duplicate, reset,
# truncation) on every worker and client transport. The harness itself
# asserts byte-identity against the fault-free single-process baseline
# per seed, and -require-all-classes fails the pass unless every one of
# the eight fault classes actually fired somewhere in the seed set (no
# silent zero-coverage schedules).
if [ -n "${TORTURE:-}" ]; then
    go run ./cmd/torture -first 1 -n 20 -require-all-classes
fi

# Optional performance pass: BENCH=1 scripts/check.sh additionally runs
# the benchmark suite and regenerates the throughput grid JSON
# (see scripts/bench.sh for BASE_REF / BENCH_OUT knobs).
if [ -n "${BENCH:-}" ]; then
    sh scripts/bench.sh
fi
