#!/bin/sh
# Full verification: vet, build, and the whole test suite under the race
# detector (the experiment engine fans simulation cells out across
# goroutines, so races here are correctness bugs, not just flakes).
# Tier-1 (ROADMAP.md) is the subset `go build ./... && go test ./...`.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...
