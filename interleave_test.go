package interleave_test

import (
	"testing"

	interleave "repro"
)

// TestPublicQuickstart exercises the doc-comment quickstart path.
func TestPublicQuickstart(t *testing.T) {
	b := interleave.NewProgram("count", 0x1000, 0x100000, 1<<20)
	b.Li(interleave.R1, 1000)
	b.Label("loop")
	b.Addi(interleave.R1, interleave.R1, -1)
	b.Bgtz(interleave.R1, "loop")
	b.Halt()
	p := b.MustBuild()

	m, err := interleave.NewMachine(interleave.DefaultConfig(interleave.Interleaved, 4))
	if err != nil {
		t.Fatal(err)
	}
	th := m.Load(0, p)
	cycles, done := m.RunUntilHalted(1 << 20)
	if !done {
		t.Fatal("program did not halt")
	}
	if cycles < 2000 {
		t.Errorf("suspiciously fast: %d cycles for 2000+ instructions", cycles)
	}
	if th.IntReg(interleave.R1) != 0 {
		t.Errorf("R1 = %d, want 0", th.IntReg(interleave.R1))
	}
	if m.Stats().Retired < 2000 {
		t.Errorf("retired = %d", m.Stats().Retired)
	}
}

func TestPublicRegistries(t *testing.T) {
	if len(interleave.Kernels()) != 12 {
		t.Errorf("kernels = %d, want 12", len(interleave.Kernels()))
	}
	if len(interleave.Apps()) != 7 {
		t.Errorf("apps = %d, want 7", len(interleave.Apps()))
	}
}

func TestPublicWorkstation(t *testing.T) {
	reg := interleave.Kernels()
	mix := []interleave.Kernel{reg["emit"], reg["mxm"]}
	cfg := interleave.DefaultWorkstationConfig(interleave.Interleaved, 2)
	cfg.OS.SliceCycles = 5_000
	res, err := interleave.RunWorkstation(mix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FairThroughput <= 0 {
		t.Error("no throughput recorded")
	}
	if len(res.Apps) != 2 {
		t.Errorf("apps = %d", len(res.Apps))
	}
}

func TestPublicMultiprocessor(t *testing.T) {
	apps := interleave.Apps()
	p := apps["ocean"].Build(interleave.AppOptions{
		CodeBase:   0x0100_0000,
		DataBase:   0x5000_0000,
		Yield:      interleave.YieldBackoff,
		NumThreads: 8,
		Steps:      1,
	})
	cfg := interleave.DefaultMPConfig(interleave.Interleaved, 2)
	cfg.Processors = 4
	res, err := interleave.RunMultiprocessor(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("ocean did not complete")
	}
	if res.Threads != 8 {
		t.Errorf("threads = %d, want 8", res.Threads)
	}
}

// TestTable7HeadlineShape verifies the paper's central claim end-to-end
// through the public API on a reduced configuration: the interleaved
// scheme outgains the blocked scheme on the workstation.
func TestTable7HeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := interleave.DefaultUniConfig()
	cfg.SliceCycles = 8_000
	cfg.MeasureRotations = 1
	cfg.Workloads = []string{"DC", "FP"}
	r, err := interleave.RunTable7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4} {
		if im, bm := r.MeanGain(interleave.Interleaved, n), r.MeanGain(interleave.Blocked, n); im <= bm {
			t.Errorf("%d contexts: interleaved %.2f <= blocked %.2f", n, im, bm)
		}
	}
}
