package interleave_test

import (
	"fmt"

	interleave "repro"
)

// ExampleMachine runs a small counting loop on a four-context interleaved
// processor.
func ExampleMachine() {
	b := interleave.NewProgram("count", 0x1000, 0x100000, 1<<20)
	b.Li(interleave.R1, 100)
	b.Label("loop")
	b.Addi(interleave.R1, interleave.R1, -1)
	b.Bgtz(interleave.R1, "loop")
	b.Halt()

	m, err := interleave.NewMachine(interleave.DefaultConfig(interleave.Interleaved, 4))
	if err != nil {
		panic(err)
	}
	th := m.Load(0, b.MustBuild())
	_, done := m.RunUntilHalted(1 << 20)
	fmt.Println(done, th.IntReg(interleave.R1))
	// Output: true 0
}

// ExampleAssemble builds the same loop from assembly text.
func ExampleAssemble() {
	p, err := interleave.Assemble("count", 0x1000, 0x100000, 1<<20, `
		li r1, 100
	loop:
		addi r1, r1, -1
		bgtz r1, loop
		halt
	`)
	if err != nil {
		panic(err)
	}
	m, _ := interleave.NewMachine(interleave.DefaultConfig(interleave.Single, 1))
	th := m.Load(0, p)
	m.RunUntilHalted(1 << 20)
	fmt.Println(th.IntReg(interleave.R1))
	// Output: 0
}

// ExampleRunMultiprocessor runs an SPMD program where every thread
// deposits its id into a private slot.
func ExampleRunMultiprocessor() {
	b := interleave.NewProgram("ids", 0x1000, 0x5000_0000, 1<<20)
	out := b.Alloc(256, 64)
	b.La(interleave.R8, out)
	b.Sll(interleave.R9, interleave.TidReg, 2)
	b.Add(interleave.R8, interleave.R8, interleave.R9)
	b.Addi(interleave.R10, interleave.TidReg, 1)
	b.Sw(interleave.R10, interleave.R8, 0)
	b.Halt()

	cfg := interleave.DefaultMPConfig(interleave.Interleaved, 2)
	cfg.Processors = 2 // 4 threads
	res, err := interleave.RunMultiprocessor(b.MustBuild(), cfg)
	if err != nil {
		panic(err)
	}
	sum := uint32(0)
	for i := uint32(0); i < 4; i++ {
		sum += res.Mem.LoadW(0x5000_0000 + 4*i)
	}
	fmt.Println(res.Completed, sum)
	// Output: true 10
}
