// Designspace: explore the paper's §6 implementation trade-offs on one
// workload by toggling single design parameters — the branch target
// buffer, the backoff instruction, the blocked scheme's switch cost
// (pipeline-register replication), and the fine-grained no-cache design.
package main

import (
	"fmt"
	"log"

	interleave "repro"
)

func run(name string, mix []interleave.Kernel, cfg interleave.WorkstationConfig, base float64) float64 {
	res, err := interleave.RunWorkstation(mix, cfg)
	if err != nil {
		log.Fatal(err)
	}
	gain := 1.0
	if base > 0 {
		gain = res.FairThroughput / base
	}
	fmt.Printf("%-38s busy %5.1f%%  throughput %.3f  gain %.2fx\n",
		name, 100*res.Throughput, res.FairThroughput, gain)
	return res.FairThroughput
}

func main() {
	reg := interleave.Kernels()
	mix := []interleave.Kernel{reg["cfft2d"], reg["gmtry"], reg["tomcatv"], reg["vpenta"]}
	fmt.Println("Design space on the DC workload (cfft2d gmtry tomcatv vpenta):")
	fmt.Println()

	base := run("single-context baseline", mix,
		interleave.DefaultWorkstationConfig(interleave.Single, 1), 0)

	run("interleaved, 4 contexts", mix,
		interleave.DefaultWorkstationConfig(interleave.Interleaved, 4), base)

	// Without the branch target buffer every taken branch pays the
	// three-cycle redirect.
	noBTB := interleave.DefaultWorkstationConfig(interleave.Interleaved, 4)
	c := interleave.DefaultConfig(interleave.Interleaved, 4)
	c.BTBEntries = 0
	noBTB.Core = &c
	run("interleaved, no BTB", mix, noBTB, base)

	// Without the backoff instruction, long FP latencies go untolerated.
	noYield := interleave.DefaultWorkstationConfig(interleave.Interleaved, 4)
	none := interleave.YieldNone
	noYield.YieldOverride = &none
	run("interleaved, no backoff instruction", mix, noYield, base)

	run("blocked, 4 contexts (7-cycle switch)", mix,
		interleave.DefaultWorkstationConfig(interleave.Blocked, 4), base)
	run("blocked-fast (replicated registers)", mix,
		interleave.DefaultWorkstationConfig(interleave.BlockedFast, 4), base)
	run("fine-grained (HEP-style, no cache)", mix,
		interleave.DefaultWorkstationConfig(interleave.FineGrained, 4), base)

	fmt.Println()
	fmt.Println("The 1-cycle blocked switch recovers part of the gap to interleaving;")
	fmt.Println("the fine-grained design pays full memory latency on every reference.")
}
