# saxpy.s — y[i] = a*x[i] + y[i] over 512 doubles, written in the
# simulated assembly language. Run with:
#
#   go run ./cmd/asmrun -scheme interleaved -contexts 2 -copies 2 examples/asm/saxpy.s
#
# With -copies 2 two threads split the vector by tid (r4) and thread
# count (r5), the SPMD convention the multiprocessor runner uses.

.alloc X 4096 64
.alloc Y 4096 64
.double X 1.5
.double X+8 2.5
.double Y 10.0

	la   r8, X
	la   r9, Y
	li   r10, 512        # elements
	divu r10, r10, r5    # elements per thread
	mul  r11, r4, r10    # my start
	sll  r11, r11, 3
	add  r8, r8, r11
	add  r9, r9, r11

	li   r12, 3          # a = 3.0
	mtc1 f1, r12

loop:
	fld  f2, 0(r8)       # x[i]
	fld  f3, 0(r9)       # y[i]
	fmul f4, f1, f2
	fadd f4, f4, f3
	fsd  f4, 0(r9)
	addi r8, r8, 8
	addi r9, r9, 8
	addi r10, r10, -1
	bgtz r10, loop
	halt
