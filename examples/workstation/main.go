// Workstation: run a custom multiprogrammed mix — a floating-point
// background job, an interactive-style pointer chaser, and two
// memory-bound kernels — across schemes and context counts, reproducing
// the paper's workstation argument (§5.1) on a user-defined workload.
package main

import (
	"fmt"
	"log"

	interleave "repro"
)

func main() {
	reg := interleave.Kernels()
	mix := []interleave.Kernel{
		reg["matrix300"], // FP background job
		reg["li"],        // branchy, pointer-chasing foreground job
		reg["cfft2d"],    // memory-bound
		reg["vpenta"],    // TLB- and memory-bound
	}

	fmt.Println("Custom workload: matrix300 + li + cfft2d + vpenta")
	fmt.Println()
	fmt.Printf("%-14s %8s %10s %12s %10s\n",
		"scheme", "contexts", "busy", "fair-thruput", "gain")

	var base float64
	for _, cfg := range []struct {
		s interleave.Scheme
		n int
	}{
		{interleave.Single, 1},
		{interleave.Blocked, 2},
		{interleave.Blocked, 4},
		{interleave.Interleaved, 2},
		{interleave.Interleaved, 4},
	} {
		wc := interleave.DefaultWorkstationConfig(cfg.s, cfg.n)
		res, err := interleave.RunWorkstation(mix, wc)
		if err != nil {
			log.Fatal(err)
		}
		if cfg.s == interleave.Single {
			base = res.FairThroughput
		}
		fmt.Printf("%-14v %8d %9.1f%% %12.3f %9.2fx\n",
			cfg.s, cfg.n, 100*res.Throughput, res.FairThroughput, res.FairThroughput/base)
	}

	fmt.Println()
	fmt.Println("The interleaved scheme tolerates this mix's short L2-hit latencies;")
	fmt.Println("the blocked scheme's 7-cycle flush consumes most of what it saves.")
}
