// Quickstart: build a small program with the public API and watch the
// interleaved scheme hide a pointer-chasing loop's cache misses that stall
// a single-context processor.
package main

import (
	"fmt"
	"log"

	interleave "repro"
)

// chaser builds a program that walks a 1024-node linked list with a
// 256 KB-spread layout (every hop misses the 64 KB L1) and then halts.
func chaser(codeBase, dataBase uint32) *interleave.Program {
	b := interleave.NewProgram("chaser", codeBase, dataBase, 1<<20)
	const nodes = 1024
	const stride = 256 // bytes between nodes: 8 pages apart per hop
	heap := b.Alloc(nodes*stride, 64)
	for i := 0; i < nodes; i++ {
		next := uint32((i + 7) % nodes)
		b.InitW(heap+uint32(i*stride), heap+next*stride)
	}
	b.La(interleave.R8, heap)
	b.Li(interleave.R9, nodes)
	b.Label("walk")
	b.Lw(interleave.R8, interleave.R8, 0) // follow the pointer: misses
	b.Addi(interleave.R9, interleave.R9, -1)
	b.Bgtz(interleave.R9, "walk")
	b.Halt()
	return b.MustBuild()
}

func run(scheme interleave.Scheme, contexts int) {
	m, err := interleave.NewMachine(interleave.DefaultConfig(scheme, contexts))
	if err != nil {
		log.Fatal(err)
	}
	// One independent chaser per context, in separate address regions.
	// The regions are staggered within the cache- and TLB-index range so
	// the lists do not all alias to the same direct-mapped sets.
	for c := 0; c < contexts; c++ {
		m.Load(c, chaser(
			0x10000+uint32(c)*0x100000+uint32(c)*0x4400,
			0x4000_0000+uint32(c)*0x400_0000+uint32(c)*0x11400))
	}
	cycles, done := m.RunUntilHalted(10_000_000)
	if !done {
		log.Fatalf("%v/%d did not finish", scheme, contexts)
	}
	s := m.Stats()
	perList := float64(cycles) / float64(contexts)
	fmt.Printf("%-12v %d context(s): %7d cycles total, %7.0f cycles/list, busy %4.1f%%\n",
		scheme, contexts, cycles, perList, 100*s.BusyFraction())
}

func main() {
	fmt.Println("Walking pointer-chasing lists (every hop misses the primary cache):")
	fmt.Println()
	run(interleave.Single, 1)
	run(interleave.Blocked, 4)
	run(interleave.Interleaved, 4)
	fmt.Println()
	fmt.Println("The interleaved processor overlaps the four lists' misses with a")
	fmt.Println("2-cycle switch cost instead of the blocked scheme's 7-cycle flush.")
}
