// Multiproc: write an SPMD program against the public API — a parallel
// histogram with a lock-protected merge and a global barrier — and run it
// on the 8-node directory-coherent multiprocessor under each scheme.
package main

import (
	"fmt"
	"log"

	interleave "repro"
)

const (
	buckets  = 64
	items    = 65536
	dataBase = 0x5000_0000
)

// histogram builds the SPMD program: each thread classifies its slice of a
// shared input array into a private histogram, then merges it into the
// shared result under a lock and waits at a barrier.
func histogram(yield interleave.YieldMode) *interleave.Program {
	b := interleave.NewProgram("histogram", 0x1000, dataBase, 1<<24)
	b.SetYield(yield)

	input := b.Alloc(items*4, 64)
	shared := b.Alloc(buckets*4, 64)
	lock := b.AllocLock()
	bar := b.AllocBarrier()
	private := b.Alloc(64*buckets*4, 64) // per-thread scratch, by tid

	for i := 0; i < items; i++ {
		b.InitW(input+uint32(4*i), uint32(i*2654435761))
	}

	// R4 = tid, R5 = nthreads (set by the runner).
	b.La(interleave.R6, bar)
	b.Li(interleave.R7, 0)

	// My private histogram base and input slice.
	b.Li(interleave.R8, buckets*4)
	b.Mul(interleave.R9, interleave.R4, interleave.R8)
	b.La(interleave.R10, private)
	b.Add(interleave.R10, interleave.R10, interleave.R9) // my histogram

	b.Li(interleave.R11, items)
	b.Divu(interleave.R11, interleave.R11, interleave.R5) // items per thread
	b.Mul(interleave.R12, interleave.R4, interleave.R11)
	b.Sll(interleave.R12, interleave.R12, 2)
	b.La(interleave.R13, input)
	b.Add(interleave.R13, interleave.R13, interleave.R12) // my slice

	// Classify.
	b.Label("classify")
	b.Lw(interleave.R14, interleave.R13, 0)
	b.Andi(interleave.R14, interleave.R14, buckets-1)
	b.Sll(interleave.R14, interleave.R14, 2)
	b.Add(interleave.R15, interleave.R10, interleave.R14)
	b.Lw(interleave.R16, interleave.R15, 0)
	b.Addi(interleave.R16, interleave.R16, 1)
	b.Sw(interleave.R16, interleave.R15, 0)
	b.Addi(interleave.R13, interleave.R13, 4)
	b.Addi(interleave.R11, interleave.R11, -1)
	b.Bgtz(interleave.R11, "classify")

	// Merge into the shared histogram under the lock.
	b.La(interleave.R17, lock)
	b.LockAcquire(interleave.R17, interleave.R2)
	b.La(interleave.R18, shared)
	b.Li(interleave.R19, buckets)
	b.Label("merge")
	b.Lw(interleave.R20, interleave.R10, 0)
	b.Lw(interleave.R21, interleave.R18, 0)
	b.Add(interleave.R21, interleave.R21, interleave.R20)
	b.Sw(interleave.R21, interleave.R18, 0)
	b.Addi(interleave.R10, interleave.R10, 4)
	b.Addi(interleave.R18, interleave.R18, 4)
	b.Addi(interleave.R19, interleave.R19, -1)
	b.Bgtz(interleave.R19, "merge")
	b.LockRelease(interleave.R17)

	b.Barrier(interleave.R6, interleave.R5, interleave.R7, interleave.R2, interleave.R3)
	b.Halt()
	return b.MustBuild()
}

func main() {
	fmt.Printf("Parallel histogram: %d items into %d buckets on 8 processors\n\n", items, buckets)

	sharedBase := uint32(dataBase + items*4)
	var total uint32
	for _, cfg := range []struct {
		s     interleave.Scheme
		n     int
		yield interleave.YieldMode
	}{
		{interleave.Single, 1, interleave.YieldNone},
		{interleave.Blocked, 4, interleave.YieldSwitch},
		{interleave.Interleaved, 4, interleave.YieldBackoff},
	} {
		mc := interleave.DefaultMPConfig(cfg.s, cfg.n)
		res, err := interleave.RunMultiprocessor(histogram(cfg.yield), mc)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Completed {
			log.Fatalf("%v did not complete", cfg.s)
		}
		// Verify the histogram sums to the item count.
		total = 0
		for i := uint32(0); i < buckets; i++ {
			total += res.Mem.LoadW(sharedBase + 4*i)
		}
		bd := res.Stats.Breakdown()
		fmt.Printf("%-12v %d ctx: %7d cycles  (busy %4.1f%%, memory %4.1f%%, sync %4.1f%%)  checksum %d\n",
			cfg.s, cfg.n, res.Cycles, 100*bd.Busy, 100*bd.DataMem, 100*bd.Sync, total)
		if total != items {
			log.Fatalf("histogram lost updates: %d != %d", total, items)
		}
	}
	fmt.Println()
	fmt.Println("All schemes produce the same histogram; the interleaved processor")
	fmt.Println("overlaps the remote misses and lock waits at the lowest switch cost.")
}
