// Command expserve is the distributed experiment service: coordinator
// and client in one binary.
//
//	expserve serve -dir STATE [-addr 127.0.0.1:7711] [-addr-file F]
//	expserve submit -coordinator URL [-quick] [-only table7,...] [-j N]
//	expserve progress -coordinator URL -job N
//	expserve wait -coordinator URL -job N [-out F] [-json-out F]
//
// serve runs the coordinator: it accepts job specs (the same resolved
// grid configs cmd/experiments runs), fans cells out to expworker
// processes under time-bounded leases with heartbeat renewal, journals
// every completed cell before acknowledging it, and survives kill -9 —
// a restart on the same -dir resumes every job from its journal with
// zero re-simulation. SIGINT/SIGTERM shut it down gracefully (exit 0).
//
// submit builds the same configurations cmd/experiments would run for
// the given flags, posts them, and prints the job id. For byte-identical
// output to a local run, pass the -quick/-only/-j of the reference run
// (parallelism appears in the result's Cfg JSON). A 429 (coordinator at
// its job bound) is retried after the coordinator's Retry-After.
//
// wait polls until the job completes — riding out coordinator restarts —
// then writes the job's stdout text (byte-identical to cmd/experiments)
// to -out or stdout, and the raw results JSON to -json-out. Exit codes
// follow cmd/experiments: 0 success, 1 any cell failed, 2 usage,
// 3 interrupted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/guard"
	"repro/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func usage() int {
	fmt.Fprintln(os.Stderr, "usage: expserve serve|submit|progress|wait [flags]")
	return experiments.ExitUsage
}

func run(args []string) int {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "serve":
		return runServe(args[1:])
	case "submit":
		return runSubmit(args[1:])
	case "progress":
		return runProgress(args[1:])
	case "wait":
		return runWait(args[1:])
	}
	return usage()
}

func die(err error) int {
	fmt.Fprintln(os.Stderr, "expserve:", err)
	return experiments.ExitFailure
}

func runServe(args []string) int {
	fs := flag.NewFlagSet("expserve serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7711", "listen address (port 0 picks a free port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file (for port 0)")
	dir := fs.String("dir", "", "state directory for job specs and cell journals (required)")
	leaseTTL := fs.Duration("lease-ttl", 10*time.Second, "cell lease duration; a worker silent this long forfeits its cells")
	maxJobs := fs.Int("max-jobs", 4, "active-job bound; submits beyond it get 429 + Retry-After")
	retryAttempts := fs.Int("retry-attempts", 3, "lease attempts per cell before it is recorded as failed")
	retryBase := fs.Duration("retry-base", 50*time.Millisecond, "base redispatch backoff (doubles per attempt, jittered)")
	breakerK := fs.Int("breaker", 3, "quarantine a worker after this many consecutive lease expiries")
	breakerCooldown := fs.Duration("breaker-cooldown", 0, "worker quarantine duration (0 = 10 lease TTLs)")
	if err := fs.Parse(args); err != nil {
		return experiments.ExitUsage
	}
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "expserve serve: -dir is required")
		return experiments.ExitUsage
	}

	logf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "expserve: "+format+"\n", a...)
	}
	coord, err := service.NewCoordinator(service.Config{
		Dir:      *dir,
		LeaseTTL: *leaseTTL,
		MaxJobs:  *maxJobs,
		Retry: guard.Retry{Attempts: *retryAttempts, Base: *retryBase,
			Cap: 2 * time.Second, Seed: 1},
		BreakerThreshold: *breakerK,
		BreakerCooldown:  *breakerCooldown,
		Logf:             logf,
	})
	if err != nil {
		return die(err)
	}
	defer coord.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return die(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return die(err)
		}
	}
	logf("serving on %s (state in %s, lease TTL %v)", bound, *dir, *leaseTTL)

	srv := &http.Server{Handler: coord.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return die(err)
		}
	case <-ctx.Done():
		logf("shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shCtx)
	}
	return 0
}

// buildSpec resolves submit's flags to the job spec, mirroring how
// cmd/experiments resolves the same flags so the submitted configs — and
// therefore the journal fingerprints and output bytes — agree with a
// local reference run.
func buildSpec(quick bool, only string, jobs int) (service.JobSpec, error) {
	var spec service.JobSpec
	if only != "" {
		for _, n := range strings.Split(only, ",") {
			spec.Only = append(spec.Only, strings.TrimSpace(n))
		}
	}
	ucfg := experiments.DefaultUniConfig()
	mcfg := experiments.DefaultMPConfig()
	if quick {
		ucfg = experiments.QuickUniConfig()
		mcfg = experiments.QuickMPConfig()
	}
	ucfg.Parallelism = jobs
	mcfg.Parallelism = jobs
	sel := experiments.Selection(spec.Only)
	if experiments.NeedUni(sel) {
		spec.Uni = &ucfg
	}
	if experiments.NeedMP(sel) {
		spec.MP = &mcfg
	}
	if spec.Uni == nil && spec.MP == nil {
		return spec, fmt.Errorf("selection %q needs no grid; pick from %s",
			only, strings.Join(experiments.GridSections, " "))
	}
	return spec, nil
}

func runSubmit(args []string) int {
	fs := flag.NewFlagSet("expserve submit", flag.ContinueOnError)
	coordinator := fs.String("coordinator", "", "coordinator base URL (required)")
	quick := fs.Bool("quick", false, "reduced problem sizes, as cmd/experiments -quick")
	only := fs.String("only", "", "comma-separated grid sections (table7 fig6 fig7 table10 fig8 fig9)")
	jobs := fs.Int("j", runtime.NumCPU(), "parallelism recorded in the result Cfg (match the reference run's -j)")
	timeout := fs.Duration("timeout", time.Minute, "give up submitting after this long")
	if err := fs.Parse(args); err != nil {
		return experiments.ExitUsage
	}
	if *coordinator == "" {
		fmt.Fprintln(os.Stderr, "expserve submit: -coordinator is required")
		return experiments.ExitUsage
	}
	spec, err := buildSpec(*quick, *only, *jobs)
	if err != nil {
		return die(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()
	client := &service.Client{Base: *coordinator}
	// Backpressure contract: a 429 names its Retry-After; honor it.
	for {
		id, cells, err := client.Submit(ctx, spec)
		if err == nil {
			fmt.Fprintf(os.Stderr, "expserve: job %d submitted (%d cells)\n", id, cells)
			fmt.Println(id)
			return 0
		}
		wait, retry := service.RetryAfter(err)
		if !retry {
			return die(err)
		}
		fmt.Fprintf(os.Stderr, "expserve: submit: %v (retrying in %v)\n", err, wait)
		select {
		case <-ctx.Done():
			return die(ctx.Err())
		case <-time.After(wait):
		}
	}
}

func runProgress(args []string) int {
	fs := flag.NewFlagSet("expserve progress", flag.ContinueOnError)
	coordinator := fs.String("coordinator", "", "coordinator base URL (required)")
	job := fs.Int("job", 0, "job id (required)")
	if err := fs.Parse(args); err != nil {
		return experiments.ExitUsage
	}
	if *coordinator == "" || *job <= 0 {
		fmt.Fprintln(os.Stderr, "expserve progress: -coordinator and -job are required")
		return experiments.ExitUsage
	}
	client := &service.Client{Base: *coordinator}
	st, err := client.Status(context.Background(), *job)
	if err != nil {
		return die(err)
	}
	fmt.Printf("job %d: %d/%d cells done, %d failed, %d duplicate reports, %d mismatches, complete=%v\n",
		st.ID, st.Done, st.Cells, st.Failed, st.Dupes, st.Mismatches, st.Complete)
	return 0
}

func runWait(args []string) int {
	fs := flag.NewFlagSet("expserve wait", flag.ContinueOnError)
	coordinator := fs.String("coordinator", "", "coordinator base URL (required)")
	job := fs.Int("job", 0, "job id (required)")
	out := fs.String("out", "", "write the job's stdout text here (default: stdout)")
	jsonOut := fs.String("json-out", "", "write the raw results JSON here (as cmd/experiments -json)")
	poll := fs.Duration("poll", 200*time.Millisecond, "status poll interval")
	if err := fs.Parse(args); err != nil {
		return experiments.ExitUsage
	}
	if *coordinator == "" || *job <= 0 {
		fmt.Fprintln(os.Stderr, "expserve wait: -coordinator and -job are required")
		return experiments.ExitUsage
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	client := &service.Client{Base: *coordinator}
	res, err := client.WaitResult(ctx, *job, *poll)
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "expserve: interrupted")
			return experiments.ExitInterrupted
		}
		return die(err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(res.Text), 0o644); err != nil {
			return die(err)
		}
	} else {
		fmt.Print(res.Text)
	}
	if *jsonOut != "" {
		if err := os.WriteFile(*jsonOut, res.JSON, 0o644); err != nil {
			return die(err)
		}
	}
	if res.Dupes > 0 || res.Mismatches > 0 {
		fmt.Fprintf(os.Stderr, "expserve: job %d absorbed %d duplicate and %d mismatched reports\n",
			*job, res.Dupes, res.Mismatches)
	}
	if res.Failures > 0 {
		fmt.Fprintf(os.Stderr, "expserve: job %d finished with %d failed cells\n", *job, res.Failures)
		return experiments.ExitFailure
	}
	return 0
}
