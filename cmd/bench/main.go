// Command bench measures simulator throughput — simulated cycles per
// wall-clock second — on a fixed grid of multiprocessor cells and writes
// the measurements as machine-readable JSON (BENCH_<n>.json).
//
// The grid covers every execution scheme at several context counts on two
// workloads:
//
//   - mp-stall: a streaming-miss kernel in which every load and store
//     misses the coherent cache (stride = line size, lines dirtied to
//     force ownership traffic). This is the memory-stall-heavy cell where
//     the event-driven fast-forward engine matters most.
//   - mp-ocean: the SPLASH Ocean grid relaxation, a high-utilization
//     paper cell (Table 10 flavor) that bounds the worst case: busy
//     slots cannot be skipped, so gains here come only from cheaper
//     stepping.
//
// Deliberately self-contained (no test-only helpers) so the identical
// source can be dropped into a checkout of an older revision and built
// there, producing an apples-to-apples baseline:
//
//	git worktree add /tmp/base <rev>
//	cp -r cmd/bench /tmp/base/cmd/
//	(cd /tmp/base && go run ./cmd/bench -label baseline -out base.json)
//	go run ./cmd/bench -baseline base.json -out BENCH_1.json
//
// With -baseline, the older run is embedded verbatim and a per-cell
// speedup table (current cycles/sec ÷ baseline cycles/sec) is added.
// scripts/bench.sh automates the whole sequence.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/mp"
	"repro/internal/prog"
	"repro/internal/splash"
)

// stallProgram is the streaming-miss kernel: each thread sweeps a private
// 128 KiB region at line stride — twice the node cache — loading and then
// dirtying every line, for the given number of passes. Every pass
// thrashes, so nearly all issue slots are memory or switch stalls at any
// context count.
func stallProgram(passes, threads int) *prog.Program {
	b := prog.NewBuilder("stall", 0x1000, 0x4000_0000, 1<<23)
	b.SetYield(prog.YieldBackoff)
	arr := b.Alloc(uint32(threads)*(128<<10), 64)
	res := b.Alloc(uint32(4*threads), 64)
	b.La(isa.R1, arr)
	b.Sll(isa.R11, mp.TidReg, 17) // tid * 128 KiB
	b.Add(isa.R1, isa.R1, isa.R11)
	b.Li(isa.R2, uint32(passes))
	b.Li(isa.R7, 0)
	b.Label("pass")
	b.Move(isa.R3, isa.R1)
	b.Li(isa.R6, (128<<10)/64)
	b.Label("loop")
	b.Lw(isa.R8, isa.R3, 0)
	b.Add(isa.R7, isa.R7, isa.R8)
	b.Sw(isa.R7, isa.R3, 32) // dirty the line: ownership traffic
	b.Addi(isa.R3, isa.R3, 64)
	b.Addi(isa.R6, isa.R6, -1)
	b.Bgtz(isa.R6, "loop")
	b.Addi(isa.R2, isa.R2, -1)
	b.Bgtz(isa.R2, "pass")
	b.Sll(isa.R11, mp.TidReg, 2)
	b.La(isa.R10, res)
	b.Add(isa.R10, isa.R10, isa.R11)
	b.Sw(isa.R7, isa.R10, 0)
	b.Halt()
	return b.MustBuild()
}

type cellSpec struct {
	Workload string
	Scheme   core.Scheme
	Contexts int
}

type measurement struct {
	Workload     string  `json:"workload"`
	Scheme       string  `json:"scheme"`
	Contexts     int     `json:"contexts"`
	Processors   int     `json:"processors"`
	Cycles       int64   `json:"sim_cycles"`
	Seconds      float64 `json:"wall_seconds"`
	CyclesPerSec float64 `json:"sim_cycles_per_sec"`
}

type runReport struct {
	Label     string        `json:"label"`
	Commit    string        `json:"commit,omitempty"`
	Go        string        `json:"go"`
	Date      string        `json:"date"`
	Repeats   int           `json:"repeats"`
	Cells     []measurement `json:"cells"`
}

type benchFile struct {
	// Baseline, when present, is a run of this same tool built from the
	// pre-change revision named in its label/commit fields.
	Baseline *runReport `json:"baseline,omitempty"`
	Current  runReport  `json:"current"`
	// Speedup maps "workload/scheme/contexts" to current ÷ baseline
	// sim-cycles-per-sec; SpeedupGeomean is their geometric mean, the
	// single number -min-geomean guards in CI.
	Speedup        map[string]float64 `json:"speedup_vs_baseline,omitempty"`
	SpeedupGeomean float64            `json:"speedup_geomean,omitempty"`
	// Sweeps holds the -sweeps mode's forked-vs-scratch measurements.
	Sweeps []sweepMeasurement `json:"sweeps,omitempty"`
}

// sweepMeasurement times one sensitivity sweep with warm-up forking
// against the same sweep fully from scratch. Identical is the
// byte-identity of the two runs' rendered tables and JSON — forking is
// an optimization, never a semantic.
type sweepMeasurement struct {
	Sweep          string  `json:"sweep"`
	Forkable       bool    `json:"forkable"`
	ScratchSeconds float64 `json:"scratch_seconds"`
	ForkedSeconds  float64 `json:"forked_seconds"`
	Speedup        float64 `json:"speedup"`
	Identical      bool    `json:"identical_output"`
}

// benchSweeps measures every sensitivity sweep twice — warm-up forking
// on and off — and reports wall-clock speedups plus output byte-identity.
// The uniprocessor sweeps run a warm-up-heavy configuration (the L2 is
// 1 MiB; one rotation barely touches it, so a steady-state measurement
// wants many warm rotations) — exactly the regime the checkpointing
// planner targets, where the shared prefix dominates per-cell cost. The
// context-count, remote-latency, and issue-width sweeps cannot fork
// (their parameter shapes warm-up itself) and are included to show the
// planner leaves them untouched.
func benchSweeps() []sweepMeasurement {
	ucfg := experiments.DefaultUniConfig()
	ucfg.WarmupRotations = 12
	ucfg.MeasureRotations = 1
	ucfg.Parallelism = 1
	mcfg := experiments.QuickMPConfig()
	mcfg.Parallelism = 1

	sweeps := []struct {
		name     string
		forkable bool
		run      func(disabled bool) (*experiments.SweepResult, error)
	}{
		{"switch-cost", true, func(d bool) (*experiments.SweepResult, error) {
			c := ucfg
			c.Checkpoint.Disabled = d
			return experiments.SwitchCostSweep(c, "DC")
		}},
		{"mshr", true, func(d bool) (*experiments.SweepResult, error) {
			c := ucfg
			c.Checkpoint.Disabled = d
			return experiments.MSHRSweep(c, "DC")
		}},
		{"context-count", false, func(d bool) (*experiments.SweepResult, error) {
			c := ucfg
			c.Checkpoint.Disabled = d
			return experiments.ContextCountSweep(c, "DC")
		}},
		{"issue-width", false, func(d bool) (*experiments.SweepResult, error) {
			c := ucfg
			c.Checkpoint.Disabled = d
			return experiments.IssueWidthSweep(c, "R1")
		}},
		{"remote-latency", false, func(d bool) (*experiments.SweepResult, error) {
			return experiments.RemoteLatencySweep(mcfg, "ocean")
		}},
	}

	var out []sweepMeasurement
	for _, s := range sweeps {
		time1 := func(disabled bool) (*experiments.SweepResult, float64) {
			t0 := time.Now()
			r, err := s.run(disabled)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench: sweep %s: %v\n", s.name, err)
				os.Exit(1)
			}
			return r, time.Since(t0).Seconds()
		}
		scratch, scratchSec := time1(true)
		forked, forkedSec := time1(false)
		wantText, gotText := experiments.FormatSweep(scratch), experiments.FormatSweep(forked)
		wantJSON, _ := json.Marshal(scratch)
		gotJSON, _ := json.Marshal(forked)
		m := sweepMeasurement{
			Sweep:          s.name,
			Forkable:       s.forkable,
			ScratchSeconds: scratchSec,
			ForkedSeconds:  forkedSec,
			Speedup:        scratchSec / forkedSec,
			Identical:      wantText == gotText && string(wantJSON) == string(gotJSON),
		}
		fmt.Fprintf(os.Stderr, "sweep %-14s scratch %6.2fs  forked %6.2fs  speedup %.2fx  identical=%v\n",
			m.Sweep, m.ScratchSeconds, m.ForkedSeconds, m.Speedup, m.Identical)
		if !m.Identical {
			fmt.Fprintf(os.Stderr, "bench: sweep %s: forked output diverges from scratch\n", s.name)
			os.Exit(1)
		}
		out = append(out, m)
	}
	return out
}

func grid() []cellSpec {
	var cells []cellSpec
	for _, sc := range []struct {
		s core.Scheme
		c []int
	}{
		{core.Single, []int{1}},
		{core.Blocked, []int{1, 2, 4}},
		{core.Interleaved, []int{2, 4}},
	} {
		for _, c := range sc.c {
			cells = append(cells, cellSpec{"mp-stall", sc.s, c})
		}
	}
	cells = append(cells,
		cellSpec{"mp-ocean", core.Blocked, 2},
		cellSpec{"mp-ocean", core.Interleaved, 4},
	)
	return cells
}

func buildProgram(spec cellSpec, processors int) *prog.Program {
	threads := processors * spec.Contexts
	switch spec.Workload {
	case "mp-stall":
		// Scale the pass count down with the context count so every cell
		// simulates enough cycles for stable wall-clock measurement:
		// fewer contexts finish their sweeps in far fewer machine cycles.
		return stallProgram(16/spec.Contexts, threads)
	case "mp-ocean":
		app, err := splash.Lookup("ocean")
		if err != nil {
			panic(err)
		}
		yield := prog.YieldSwitch
		if spec.Scheme == core.Interleaved {
			yield = prog.YieldBackoff
		}
		return app.Build(splash.Options{
			CodeBase: 0x0100_0000, DataBase: 0x5000_0000,
			Yield: yield, AutoTolerate: true,
			NumThreads: threads, Steps: 10,
		})
	}
	panic("unknown workload " + spec.Workload)
}

func measure(spec cellSpec, processors, repeats int) (measurement, error) {
	p := buildProgram(spec, processors)
	cfg := mp.DefaultConfig(spec.Scheme, spec.Contexts)
	cfg.Processors = processors
	cfg.LimitCycles = 500_000_000
	m := measurement{
		Workload:   spec.Workload,
		Scheme:     spec.Scheme.String(),
		Contexts:   spec.Contexts,
		Processors: processors,
	}
	best := -1.0
	for r := 0; r < repeats; r++ {
		t0 := time.Now()
		res, err := mp.Run(p, cfg)
		if err != nil {
			return m, fmt.Errorf("%s/%s/%dctx: %w", spec.Workload, spec.Scheme, spec.Contexts, err)
		}
		if !res.Completed {
			return m, fmt.Errorf("%s/%s/%dctx: hit cycle limit", spec.Workload, spec.Scheme, spec.Contexts)
		}
		sec := time.Since(t0).Seconds()
		if cps := float64(res.Cycles) / sec; cps > best {
			best = cps
			m.Cycles = res.Cycles
			m.Seconds = sec
			m.CyclesPerSec = cps
		}
	}
	return m, nil
}

func main() {
	out := flag.String("out", "-", "output file (- for stdout)")
	label := flag.String("label", "current", "label recorded for this run")
	commit := flag.String("commit", "", "revision id recorded for this run")
	baseline := flag.String("baseline", "", "JSON file from a run of this tool at the pre-change revision; embedded, with per-cell speedups computed")
	repeats := flag.Int("repeat", 3, "runs per cell; best is kept")
	processors := flag.Int("processors", 8, "multiprocessor node count")
	sweeps := flag.Bool("sweeps", false, "measure the sensitivity sweeps forked-vs-scratch instead of the throughput grid (self-baselining: needs no older revision)")
	minGeomean := flag.Float64("min-geomean", 0, "with -baseline: exit 1 unless the geomean of per-cell speedups is at least this (0 disables the guard)")
	flag.Parse()

	rep := runReport{
		Label:   *label,
		Commit:  *commit,
		Go:      runtime.Version(),
		Date:    time.Now().UTC().Format(time.RFC3339),
		Repeats: *repeats,
	}
	if *sweeps {
		file := benchFile{Current: rep, Sweeps: benchSweeps()}
		writeReport(&file, *out)
		return
	}
	for _, spec := range grid() {
		m, err := measure(spec, *processors, *repeats)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "%-10s %-12s %dctx: %9.0f sim-cycles/sec (%d cycles in %.2fs)\n",
			m.Workload, m.Scheme, m.Contexts, m.CyclesPerSec, m.Cycles, m.Seconds)
		rep.Cells = append(rep.Cells, m)
	}

	file := benchFile{Current: rep}
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		var base runReport
		// Accept either a bare runReport or a previous combined file.
		var prev benchFile
		if err := json.Unmarshal(raw, &base); err != nil || len(base.Cells) == 0 {
			if err2 := json.Unmarshal(raw, &prev); err2 != nil || len(prev.Current.Cells) == 0 {
				fmt.Fprintf(os.Stderr, "bench: %s: not a bench report\n", *baseline)
				os.Exit(1)
			}
			base = prev.Current
		}
		file.Baseline = &base
		file.Speedup = map[string]float64{}
		logSum := 0.0
		for _, b := range base.Cells {
			key := fmt.Sprintf("%s/%s/%dctx", b.Workload, b.Scheme, b.Contexts)
			for _, c := range rep.Cells {
				if c.Workload == b.Workload && c.Scheme == b.Scheme && c.Contexts == b.Contexts {
					s := c.CyclesPerSec / b.CyclesPerSec
					file.Speedup[key] = s
					logSum += math.Log(s)
				}
			}
		}
		if n := len(file.Speedup); n > 0 {
			file.SpeedupGeomean = math.Exp(logSum / float64(n))
			fmt.Fprintf(os.Stderr, "geomean speedup vs %s: %.3fx over %d cells\n",
				base.Label, file.SpeedupGeomean, n)
		}
		if *minGeomean > 0 && file.SpeedupGeomean < *minGeomean {
			writeReport(&file, *out)
			fmt.Fprintf(os.Stderr, "bench: geomean %.3f below the %.2f regression bar\n",
				file.SpeedupGeomean, *minGeomean)
			os.Exit(1)
		}
	}

	writeReport(&file, *out)
}

func writeReport(file *benchFile, out string) {
	enc, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}
