package main

import (
	"fmt"
	"strings"

	"repro/internal/faultfs"
	"repro/internal/faultnet"
)

// schedule is one seed's complete fault plan: a disk plan under the
// coordinator's journals, and a network plan per HTTP participant (the
// polling client and each of the two workers).
type schedule struct {
	Disk    faultfs.Plan
	Client  faultnet.Plan
	Workers [2]faultnet.Plan
}

func (s schedule) String() string {
	return fmt.Sprintf("disk{%s} client{%s} w0{%s} w1{%s}",
		s.Disk, s.Client, s.Workers[0], s.Workers[1])
}

// splitmix64 is the repo-wide seeding primitive (see guard, faultfs,
// faultnet): advancing x yields an independent stream per seed.
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// scheduleFromSeed derives the whole schedule from the seed alone — a
// pure function, so "replay seed N" is the complete reproduction
// recipe.
//
// The disk plan does not reuse faultfs.PlanFromSeed: its default
// ordinal spans target long-running hosts, and a 5-cell torture run
// performs only ~6 journal writes and ~6 syncs per job. The spans here
// are fitted to that volume (and the ENOSPC budget to its byte volume,
// past the journal header, within the cell records), so scheduled disk
// faults actually land. One disk class per seed — the run crashes and
// restarts on the first disk fault, so arming several would leave the
// rest unfired noise. The class rotates with the seed; network plans
// carry all five classes (request volume is high enough for
// faultnet's 2..21 ordinal window on every transport).
func scheduleFromSeed(seed int64) schedule {
	x := uint64(seed) ^ 0x746f7274 // "tort": decorrelate from other consumers of the seed
	var s schedule
	switch seed % 3 {
	case 0:
		s.Disk.TornWriteAt = int64(2 + splitmix64(&x)%5)
		s.Disk.TornWriteKeep = int(splitmix64(&x) % 48)
	case 1:
		s.Disk.FailSyncAt = int64(2 + splitmix64(&x)%5)
	case 2:
		s.Disk.ENOSPCAfterBytes = int64(400 + splitmix64(&x)%1200)
	}
	s.Client = faultnet.PlanFromSeed(int64(splitmix64(&x)), faultnet.AllNetFaults)
	s.Workers[0] = faultnet.PlanFromSeed(int64(splitmix64(&x)), faultnet.AllNetFaults)
	s.Workers[1] = faultnet.PlanFromSeed(int64(splitmix64(&x)), faultnet.AllNetFaults)
	return s
}

// event is one removable fault in a schedule, for shrinking.
type event struct {
	name  string
	clear func(*schedule)
}

// events enumerates the schedule's armed faults.
func events(s schedule) []event {
	var evs []event
	if s.Disk.TornWriteAt != 0 {
		evs = append(evs, event{"disk:torn-write", func(c *schedule) { c.Disk.TornWriteAt, c.Disk.TornWriteKeep = 0, 0 }})
	}
	if s.Disk.FailSyncAt != 0 {
		evs = append(evs, event{"disk:failed-sync", func(c *schedule) { c.Disk.FailSyncAt = 0 }})
	}
	if s.Disk.ENOSPCAfterBytes != 0 {
		evs = append(evs, event{"disk:enospc", func(c *schedule) { c.Disk.ENOSPCAfterBytes = 0 }})
	}
	nets := []struct {
		name string
		plan func(*schedule) *faultnet.Plan
	}{
		{"client", func(c *schedule) *faultnet.Plan { return &c.Client }},
		{"w0", func(c *schedule) *faultnet.Plan { return &c.Workers[0] }},
		{"w1", func(c *schedule) *faultnet.Plan { return &c.Workers[1] }},
	}
	for _, n := range nets {
		n := n
		p := n.plan(&s)
		if p.DropAt != 0 {
			evs = append(evs, event{n.name + ":drop", func(c *schedule) { n.plan(c).DropAt = 0 }})
		}
		if p.DelayAt != 0 {
			evs = append(evs, event{n.name + ":delay", func(c *schedule) { pl := n.plan(c); pl.DelayAt, pl.Delay = 0, 0 }})
		}
		if p.DupAt != 0 {
			evs = append(evs, event{n.name + ":duplicate", func(c *schedule) { n.plan(c).DupAt = 0 }})
		}
		if p.ResetAt != 0 {
			evs = append(evs, event{n.name + ":reset", func(c *schedule) { n.plan(c).ResetAt = 0 }})
		}
		if p.TruncateAt != 0 {
			evs = append(evs, event{n.name + ":truncation", func(c *schedule) { pl := n.plan(c); pl.TruncateAt, pl.TruncateBytes = 0, 0 }})
		}
	}
	return evs
}

// shrinkSchedule minimizes a failing schedule: remove one fault event
// at a time, keeping each removal that still reproduces the failure,
// until no single removal does. The result is 1-minimal — every
// remaining fault is necessary (removing any one of them makes the
// failure vanish). fails runs a candidate and reports whether it still
// fails.
func shrinkSchedule(s schedule, fails func(schedule) bool) schedule {
	for changed := true; changed; {
		changed = false
		for _, ev := range events(s) {
			cand := s
			ev.clear(&cand)
			if fails(cand) {
				s = cand
				changed = true
			}
		}
	}
	return s
}

// remaining lists the armed fault names, for the minimal-schedule
// report.
func remaining(s schedule) string {
	evs := events(s)
	if len(evs) == 0 {
		return "none (failure reproduces with no faults at all — a base bug)"
	}
	names := make([]string, len(evs))
	for i, ev := range evs {
		names[i] = ev.name
	}
	return strings.Join(names, " ")
}
