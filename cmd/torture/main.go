// Command torture drives the distributed experiment service through
// seeded disk and network fault schedules and holds it to the repo's
// one correctness bar: the final tables and -json bytes must be
// byte-identical to a fault-free single-process run of the same grid.
//
// Per seed, an in-process coordinator + two workers run a small
// workstation grid while:
//
//   - a faultfs injector under the coordinator's journals executes one
//     seeded disk fault (torn write, failed sync, or ENOSPC) and, when
//     it fires, the coordinator is crashed and restarted from the
//     crash-point directory image (only what was fsync'd survives);
//   - faultnet transports on every worker and on the polling client
//     execute seeded drops, delays, duplicated deliveries, connection
//     resets and truncated response bodies.
//
// The harness reports which fault classes actually fired — a schedule
// whose faults all landed beyond the run's operation count is loud,
// never silent — and -require-all-classes turns missing coverage across
// the whole seed set into a failure (the CI gate). A failing seed is
// shrunk to a minimal schedule by removing fault events one at a time
// while the failure reproduces.
//
// Usage:
//
//	torture [-first N] [-n N] [-seed N] [-require-all-classes]
//	        [-shrink] [-run-timeout D] [-v]
//
// Exit code 0: every seed byte-identical. 1: divergence, timeout, or
// (when required) missing class coverage. 2: usage.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/faultfs"
	"repro/internal/faultnet"
	"repro/internal/guard"
	"repro/internal/service"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("torture", flag.ExitOnError)
	first := fs.Int64("first", 1, "first seed of the range")
	n := fs.Int64("n", 20, "how many consecutive seeds to run")
	seed := fs.Int64("seed", 0, "run exactly this one seed (overrides -first/-n)")
	requireAll := fs.Bool("require-all-classes", false,
		"fail unless every disk and network fault class fired at least once across the seed set")
	shrink := fs.Bool("shrink", true, "shrink a failing seed to a minimal schedule")
	runTimeout := fs.Duration("run-timeout", 60*time.Second, "per-seed wall-clock bound")
	verbose := fs.Bool("v", false, "log coordinator/worker events")
	fs.Parse(os.Args[1:])

	seeds := make([]int64, 0, *n)
	if *seed != 0 {
		seeds = append(seeds, *seed)
	} else {
		for s := *first; s < *first+*n; s++ {
			seeds = append(seeds, s)
		}
	}

	spec := tortureSpec()
	baseText, baseJSON, err := baseline(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "torture: baseline run: %v\n", err)
		return 1
	}

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "  | "+format+"\n", args...)
		}
	}

	coverage := map[string]int64{}
	failures := 0
	for _, s := range seeds {
		sched := scheduleFromSeed(s)
		fired, err := runSeed(spec, baseText, baseJSON, sched, *runTimeout, logf)
		for class, count := range fired {
			coverage[class] += count
		}
		if err != nil {
			failures++
			fmt.Printf("seed %d: FAIL (%s): %v\n", s, sched, err)
			if *shrink {
				min := shrinkSchedule(sched, func(cand schedule) bool {
					_, rerr := runSeed(spec, baseText, baseJSON, cand, *runTimeout, logf)
					return rerr != nil
				})
				fmt.Printf("seed %d: minimal failing schedule: %s — necessary faults: %s\n", s, min, remaining(min))
				fmt.Printf("seed %d: replay with: torture -seed %d  (schedules are pure functions of the seed)\n", s, s)
			}
			continue
		}
		fmt.Printf("seed %d: ok (%s) fired: %s\n", s, sched, firedString(fired))
	}

	fmt.Printf("coverage across %d seed(s): %s\n", len(seeds), firedString(coverage))
	if *requireAll {
		var missing []string
		for _, k := range faultfs.DiskFaultKinds {
			if coverage[k.String()] == 0 {
				missing = append(missing, k.String())
			}
		}
		for _, k := range faultnet.NetFaultKinds {
			if coverage[k.String()] == 0 {
				missing = append(missing, k.String())
			}
		}
		if len(missing) > 0 {
			fmt.Printf("FAIL: fault classes never fired: %s\n", strings.Join(missing, " "))
			return 1
		}
	}
	if failures > 0 {
		fmt.Printf("FAIL: %d of %d seeds diverged\n", failures, len(seeds))
		return 1
	}
	fmt.Println("PASS: every seed byte-identical to the fault-free baseline")
	return 0
}

// tortureSpec is the grid under torture: the quick workstation config
// (one workload, 5 cells) — small enough that 20 seeds finish in CI,
// real enough that every service path (lease, heartbeat, complete,
// journal, assembly) runs.
func tortureSpec() service.JobSpec {
	cfg := experiments.QuickUniConfig()
	cfg.Workloads = []string{"DC"}
	cfg.Parallelism = 2
	return service.JobSpec{Uni: &cfg}
}

// baseline computes the fault-free single-process result the way
// cmd/experiments would print it — the byte-identity reference.
func baseline(spec service.JobSpec) (text string, jsonBytes []byte, err error) {
	sel := experiments.Selection(spec.Only)
	uni, err := experiments.RunUniprocessorCtx(context.Background(), *spec.Uni)
	if err != nil {
		return "", nil, err
	}
	blob := map[string]any{"workstation": uni}
	data, err := json.MarshalIndent(blob, "", "  ")
	if err != nil {
		return "", nil, err
	}
	return experiments.RenderUniSections(sel, uni), data, nil
}

// firedString renders a fired-class tally compactly and stably.
func firedString(fired map[string]int64) string {
	if len(fired) == 0 {
		return "nothing (all scheduled faults landed beyond the run's operations)"
	}
	keys := make([]string, 0, len(fired))
	for k := range fired {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s×%d", k, fired[k]))
	}
	return strings.Join(parts, " ")
}

// rebind reopens the coordinator's address after a crash, riding out
// the old listener's teardown.
func rebind(addr string) (net.Listener, error) {
	var err error
	for i := 0; i < 100; i++ {
		var ln net.Listener
		if ln, err = net.Listen("tcp", addr); err == nil {
			return ln, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return nil, fmt.Errorf("rebind %s: %w", addr, err)
}

// runSeed executes one fault schedule end-to-end and byte-diffs the
// service's result against the baseline. It returns the tally of fault
// classes that actually fired, and an error on any divergence.
func runSeed(spec service.JobSpec, baseText string, baseJSON []byte, sched schedule,
	timeout time.Duration, logf func(string, ...any)) (map[string]int64, error) {

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The coordinator's "disk": journals take faults, spec files do not
	// (their writer is proved separately; keeping them clean keeps the
	// journal fault ordinals stable).
	mem := faultfs.NewMem()
	if err := mem.MkdirAll("/state", 0o755); err != nil {
		return nil, err
	}
	crashCh := make(chan faultfs.Fault, 8)
	inj := faultfs.NewInjector(mem, sched.Disk,
		func(path string) bool { return strings.HasSuffix(path, ".journal") },
		func(f faultfs.Fault) {
			select {
			case crashCh <- f:
			default:
			}
		})

	coordCfg := service.Config{
		Dir:      "/state",
		FS:       inj,
		LeaseTTL: 250 * time.Millisecond,
		Retry:    guard.Retry{Attempts: 1000, Base: 10 * time.Millisecond, Cap: 100 * time.Millisecond, Seed: 1},
		// The breaker is effectively off: quarantine under injected chaos
		// would only slow the run, and the breaker has its own test.
		BreakerThreshold: 1000,
		Logf:             logf,
	}
	coord, err := service.NewCoordinator(coordCfg)
	if err != nil {
		return nil, fmt.Errorf("coordinator: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := ln.Addr().String()
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)

	// Two workers, each behind its own faulted transport.
	transports := []*faultnet.Transport{
		faultnet.NewTransport(nil, sched.Client, nil),
		faultnet.NewTransport(nil, sched.Workers[0], nil),
		faultnet.NewTransport(nil, sched.Workers[1], nil),
	}
	for i := 0; i < 2; i++ {
		w := service.NewWorker(service.WorkerConfig{
			Coordinator:  "http://" + addr,
			Name:         fmt.Sprintf("torture-w%d", i),
			Slots:        2,
			PollInterval: 50 * time.Millisecond,
			Logf:         logf,
			HTTPClient:   &http.Client{Transport: transports[1+i]},
		})
		go w.Run(ctx)
	}

	tally := func() map[string]int64 {
		fired := map[string]int64{}
		for k, v := range inj.Fired() {
			fired[k.String()] += v
		}
		for _, tr := range transports {
			for k, v := range tr.Fired() {
				fired[k.String()] += v
			}
		}
		return fired
	}

	client := &service.Client{Base: "http://" + addr, HTTP: &http.Client{Transport: transports[0]}}
	deadline := time.Now().Add(timeout)

	// Submit rides out injected faults and crash-restart windows.
	var job int
	for {
		var serr error
		if job, _, serr = client.Submit(ctx, spec); serr == nil {
			break
		}
		wait, retry := service.RetryAfter(serr)
		if !retry || time.Now().After(deadline) {
			return tally(), fmt.Errorf("submit: %v", serr)
		}
		select {
		case f := <-crashCh:
			if srv, coord, err = crashRestart(srv, coord, &mem, inj, coordCfg, addr, f, logf); err != nil {
				return tally(), err
			}
		case <-time.After(wait):
		}
	}

	type outcome struct {
		res service.JobResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := client.WaitResult(ctx, job, 50*time.Millisecond)
		done <- outcome{res, err}
	}()

	for {
		select {
		case f := <-crashCh:
			if srv, coord, err = crashRestart(srv, coord, &mem, inj, coordCfg, addr, f, logf); err != nil {
				return tally(), err
			}
		case o := <-done:
			srv.Close()
			coord.Close()
			if o.err != nil {
				return tally(), fmt.Errorf("result: %v", o.err)
			}
			return tally(), diff(o.res, baseText, baseJSON)
		case <-time.After(time.Until(deadline)):
			srv.Close()
			coord.Close()
			return tally(), fmt.Errorf("run exceeded %v (livelock under this schedule?)", timeout)
		}
	}
}

// crashRestart is the machine rebooting mid-run: the serving process
// dies where it stands, the disk reverts to exactly what was fsync'd
// (the crash image), and a fresh coordinator recovers from it on the
// same address. The fault injector dies with the machine — a full disk
// has been "freed" by the reboot, and at most one crash per run keeps
// schedules terminating.
func crashRestart(srv *http.Server, coord *service.Coordinator, mem **faultfs.Mem,
	inj *faultfs.Injector, cfg service.Config, addr string, f faultfs.Fault,
	logf func(string, ...any)) (*http.Server, *service.Coordinator, error) {

	logf("disk fault %v on %s → crashing coordinator", f.Kind, f.Path)
	srv.Close()
	coord.Close()
	img := (*mem).CrashImage()
	*mem = img
	cfg.FS = img // post-reboot: clean disk, no further injection
	coord2, err := service.NewCoordinator(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("recovery after %v: %w", f.Kind, err)
	}
	ln, err := rebind(addr)
	if err != nil {
		return nil, nil, err
	}
	srv2 := &http.Server{Handler: coord2.Handler()}
	go srv2.Serve(ln)
	return srv2, coord2, nil
}

// diff compares a service result against the baseline bytes.
func diff(res service.JobResult, baseText string, baseJSON []byte) error {
	if res.Failures > 0 {
		return fmt.Errorf("%d cells recorded as failed (baseline has none)", res.Failures)
	}
	if res.Mismatches > 0 {
		return fmt.Errorf("%d mismatched duplicate reports — determinism violation", res.Mismatches)
	}
	if res.Text != baseText {
		return fmt.Errorf("table text diverges from baseline (%d vs %d bytes): %s",
			len(res.Text), len(baseText), firstDiff([]byte(res.Text), []byte(baseText)))
	}
	if !bytes.Equal(res.JSON, baseJSON) {
		return fmt.Errorf("-json bytes diverge from baseline (%d vs %d bytes): %s",
			len(res.JSON), len(baseJSON), firstDiff(res.JSON, baseJSON))
	}
	return nil
}

func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 20
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("first divergence at byte %d: got ...%q, want ...%q", i, a[lo:i+1], b[lo:i+1])
		}
	}
	return fmt.Sprintf("one is a prefix of the other (diverge at byte %d)", n)
}
