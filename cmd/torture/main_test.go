package main

import (
	"testing"
	"time"
)

// Two seeds in-process — one per crash-inducing disk class family —
// keep the harness itself under tier-1 without the full CI seed set
// (scripts/check.sh TORTURE=1 runs 20).
func TestTortureSmoke(t *testing.T) {
	spec := tortureSpec()
	baseText, baseJSON, err := baseline(spec)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	for _, seed := range []int64{1, 3} { // failed-sync and torn-write schedules
		sched := scheduleFromSeed(seed)
		fired, err := runSeed(spec, baseText, baseJSON, sched, 60*time.Second, func(string, ...any) {})
		if err != nil {
			t.Errorf("seed %d (%s): %v", seed, sched, err)
			continue
		}
		total := int64(0)
		for _, n := range fired {
			total += n
		}
		if total == 0 {
			t.Errorf("seed %d: no faults fired — the schedule was a no-op", seed)
		}
		t.Logf("seed %d: fired %s", seed, firedString(fired))
	}
}

func TestScheduleFromSeedDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a, b := scheduleFromSeed(seed), scheduleFromSeed(seed)
		if a != b {
			t.Fatalf("seed %d: schedule not a pure function of the seed:\n%s\n%s", seed, a, b)
		}
		if a.Disk.Empty() {
			t.Fatalf("seed %d: no disk fault armed", seed)
		}
		if a.Client.Empty() || a.Workers[0].Empty() || a.Workers[1].Empty() {
			t.Fatalf("seed %d: a transport has no faults armed", seed)
		}
	}
	if scheduleFromSeed(1) == scheduleFromSeed(2) {
		t.Fatal("distinct seeds produced identical schedules")
	}
}

// The shrinker must strip every fault the failure does not need and
// keep every fault it does.
func TestShrinkSchedule(t *testing.T) {
	full := scheduleFromSeed(1)
	if full.Disk.FailSyncAt == 0 {
		t.Fatalf("test premise: seed 1 arms failed-sync, got %s", full)
	}
	// Synthetic failure: reproduces iff the disk failed-sync AND the
	// client drop are both present.
	fails := func(s schedule) bool {
		return s.Disk.FailSyncAt != 0 && s.Client.DropAt != 0
	}
	min := shrinkSchedule(full, fails)
	want := schedule{}
	want.Disk.FailSyncAt = full.Disk.FailSyncAt
	want.Client.DropAt = full.Client.DropAt
	if min != want {
		t.Fatalf("shrink kept extra faults:\n got %s\nwant %s", min, want)
	}
	if got := remaining(min); got != "disk:failed-sync client:drop" {
		t.Fatalf("remaining = %q", got)
	}
}
