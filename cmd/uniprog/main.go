// Command uniprog runs one multiprogrammed workstation workload under one
// scheme/context configuration and prints the utilization breakdown — the
// building block of the paper's Table 7 and Figures 6-7.
//
// Usage:
//
//	uniprog -workload DC -scheme interleaved -contexts 4
//	uniprog -apps doduc,emit -scheme blocked -contexts 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/workstation"
)

func parseScheme(s string) (core.Scheme, error) {
	for sc := core.Scheme(0); int(sc) < core.NumSchemes; sc++ {
		if sc.String() == s {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("unknown scheme %q (single, blocked, blocked-fast, interleaved, fine-grained)", s)
}

func main() {
	workload := flag.String("workload", "DC", "Table 5 workload (IC DC DT FP R0 R1 SP)")
	appList := flag.String("apps", "", "comma-separated kernel names (overrides -workload)")
	scheme := flag.String("scheme", "interleaved", "context scheme")
	contexts := flag.Int("contexts", 4, "hardware contexts")
	slice := flag.Int64("slice", 60_000, "scheduler time slice in cycles")
	rotations := flag.Int("rotations", 2, "measured scheduler rotations")
	flag.Parse()

	sc, err := parseScheme(*scheme)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uniprog:", err)
		os.Exit(1)
	}
	if sc == core.Single {
		*contexts = 1
	}

	var kernels []apps.Kernel
	if *appList != "" {
		for _, n := range strings.Split(*appList, ",") {
			k, err := apps.Lookup(strings.TrimSpace(n))
			if err != nil {
				fmt.Fprintln(os.Stderr, "uniprog:", err)
				os.Exit(1)
			}
			kernels = append(kernels, k)
		}
	} else {
		kernels, err = experiments.ResolveWorkload(*workload)
		if err != nil {
			fmt.Fprintln(os.Stderr, "uniprog:", err)
			os.Exit(1)
		}
	}

	cfg := workstation.DefaultConfig(sc, *contexts)
	cfg.OS.SliceCycles = *slice
	cfg.MeasureRotations = *rotations
	res, err := workstation.Run(kernels, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uniprog:", err)
		os.Exit(1)
	}

	fmt.Printf("workload: %d applications, scheme %v, %d context(s), %d cycles measured\n\n",
		len(kernels), sc, *contexts, res.Stats.Cycles)
	bd := res.Stats.Breakdown()
	t := stats.NewTable("category", "fraction")
	t.AddRow("busy", stats.Pct(bd.Busy+bd.Sync))
	t.AddRow("instruction stall", stats.Pct(bd.InstrShort+bd.InstrLong))
	t.AddRow("inst cache", stats.Pct(bd.InstCache))
	t.AddRow("data cache/TLB", stats.Pct(bd.DataMem))
	t.AddRow("context switch", stats.Pct(bd.Switch))
	t.AddRow("idle", stats.Pct(bd.Idle))
	fmt.Println(t.String())

	fmt.Printf("\nprocessor busy fraction:       %.3f\n", res.Throughput)
	fmt.Printf("fair-normalized throughput:    %.3f insts/cycle\n\n", res.FairThroughput)
	at := stats.NewTable("application", "retired", "devoted cycles", "insts/devoted-cycle")
	for _, a := range res.Apps {
		eff := 0.0
		if a.Devoted > 0 {
			eff = float64(a.Retired) / float64(a.Devoted)
		}
		at.AddRow(a.Name, fmt.Sprint(a.Retired), fmt.Sprint(a.Devoted), fmt.Sprintf("%.3f", eff))
	}
	fmt.Println(at.String())
}
