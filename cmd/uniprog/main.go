// Command uniprog runs one multiprogrammed workstation workload under one
// or more scheme/context configurations and prints the utilization
// breakdown — the building block of the paper's Table 7 and Figures 6-7.
//
// Usage:
//
//	uniprog -workload DC -scheme interleaved -contexts 4
//	uniprog -apps doduc,emit -scheme blocked -contexts 2
//	uniprog -workload DC -scheme interleaved -contexts 1,2,4 -j 4
//
// A comma-separated -contexts list fans the runs out across -j workers
// (default: all CPUs) and prints them in list order; -j 1 runs serially.
//
// SIGINT/SIGTERM drain the run gracefully: queued configurations are
// skipped, running simulations stop within a bounded number of simulated
// cycles, completed configurations are still printed, and the command
// exits with code 3.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/guard"
	"repro/internal/metrics"
	"repro/internal/profiling"
	"repro/internal/stats"
	"repro/internal/workstation"
)

func parseScheme(s string) (core.Scheme, error) {
	for sc := core.Scheme(0); int(sc) < core.NumSchemes; sc++ {
		if sc.String() == s {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("unknown scheme %q (single, blocked, blocked-fast, interleaved, fine-grained)", s)
}

func main() {
	os.Exit(run(os.Args[1:]))
}

// completedHook, when non-nil, is called after configuration i's
// simulation completes (before any reporting). The drain tests use it to
// raise SIGINT partway through a -contexts list.
var completedHook func(i int)

// run is main with an explicit exit code so the signal-drain path is
// testable in-process: 0 success, 1 failure, 2 usage, 3 interrupted.
func run(args []string) int {
	fs := flag.NewFlagSet("uniprog", flag.ContinueOnError)
	workload := fs.String("workload", "DC", "Table 5 workload (IC DC DT FP R0 R1 SP)")
	appList := fs.String("apps", "", "comma-separated kernel names (overrides -workload)")
	scheme := fs.String("scheme", "interleaved", "context scheme")
	contexts := fs.String("contexts", "4", "hardware contexts (comma-separated list fans out)")
	slice := fs.Int64("slice", 60_000, "scheduler time slice in cycles")
	rotations := fs.Int("rotations", 2, "measured scheduler rotations")
	jobs := fs.Int("j", runtime.NumCPU(), "concurrent simulations for a -contexts list (1 = serial)")
	gopts := guard.BindFlags(fs)
	prof := profiling.BindFlags(fs)
	obs := metrics.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return experiments.ExitUsage
	}

	// On failure, print the structured diagnostic (when the error carries
	// one) instead of a raw panic stack, and exit non-zero.
	die := func(err error) int {
		fmt.Fprintln(os.Stderr, "uniprog:", guard.Report(err))
		return experiments.ExitFailure
	}

	// SIGINT/SIGTERM cancel this context; the pool drains and the
	// simulation loops observe the cancellation at block granularity.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	stopProf, err := prof.Start()
	if err != nil {
		return die(err)
	}
	defer stopProf()

	sc, err := parseScheme(*scheme)
	if err != nil {
		return die(err)
	}
	var counts []int
	for _, c := range strings.Split(*contexts, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(c))
		if err != nil || n < 1 {
			return die(fmt.Errorf("bad -contexts value %q", c))
		}
		if sc == core.Single {
			n = 1
		}
		counts = append(counts, n)
	}

	var kernels []apps.Kernel
	if *appList != "" {
		for _, n := range strings.Split(*appList, ",") {
			k, err := apps.Lookup(strings.TrimSpace(n))
			if err != nil {
				return die(err)
			}
			kernels = append(kernels, k)
		}
	} else {
		kernels, err = experiments.ResolveWorkload(*workload)
		if err != nil {
			return die(err)
		}
	}

	// Fan the configurations out; results land in run order so the report
	// below is independent of completion order.
	results := make([]*workstation.Result, len(counts))
	err = experiments.NewPool(*jobs).Run(ctx, len(counts), func(ctx context.Context, i int) error {
		cfg := workstation.DefaultConfig(sc, counts[i])
		cfg.OS.SliceCycles = *slice
		cfg.MeasureRotations = *rotations
		cfg.Guard = *gopts
		cfg.Obs = obs.Options()
		r, err := workstation.RunCtx(ctx, kernels, cfg)
		if err != nil {
			return err
		}
		results[i] = r
		if completedHook != nil {
			completedHook(i)
		}
		return nil
	})
	interrupted := err != nil && guard.IsCancellation(err) && ctx.Err() != nil
	if err != nil && !interrupted {
		return die(err)
	}

	printed := 0
	for i, res := range results {
		if res == nil {
			continue // interrupted before this configuration completed
		}
		if printed > 0 {
			fmt.Println()
		}
		printed++
		report(len(kernels), sc, counts[i], res)
		// With a -contexts list, each configuration gets its own suffixed
		// output file; a single run writes the paths as given.
		suffix := ""
		if len(counts) > 1 {
			suffix = fmt.Sprintf("%dctx", counts[i])
		}
		label := fmt.Sprintf("%s-%v-%dctx", *workload, sc, counts[i])
		if err := obs.Write(res.Metrics, label, suffix); err != nil {
			return die(err)
		}
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "uniprog: interrupted; %d of %d configurations completed\n", printed, len(counts))
		return experiments.ExitInterrupted
	}
	return 0
}

func report(nkernels int, sc core.Scheme, contexts int, res *workstation.Result) {
	fmt.Printf("workload: %d applications, scheme %v, %d context(s), %d cycles measured\n\n",
		nkernels, sc, contexts, res.Stats.Cycles)
	bd := res.Stats.Breakdown()
	t := stats.NewTable("category", "fraction")
	t.AddRow("busy", stats.Pct(bd.Busy+bd.Sync))
	t.AddRow("instruction stall", stats.Pct(bd.InstrShort+bd.InstrLong))
	t.AddRow("inst cache", stats.Pct(bd.InstCache))
	t.AddRow("data cache/TLB", stats.Pct(bd.DataMem))
	t.AddRow("context switch", stats.Pct(bd.Switch))
	t.AddRow("idle", stats.Pct(bd.Idle))
	fmt.Println(t.String())

	fmt.Printf("\nprocessor busy fraction:       %.3f\n", res.Throughput)
	fmt.Printf("fair-normalized throughput:    %.3f insts/cycle\n\n", res.FairThroughput)
	at := stats.NewTable("application", "retired", "devoted cycles", "insts/devoted-cycle")
	for _, a := range res.Apps {
		eff := 0.0
		if a.Devoted > 0 {
			eff = float64(a.Retired) / float64(a.Devoted)
		}
		at.AddRow(a.Name, fmt.Sprint(a.Retired), fmt.Sprint(a.Devoted), fmt.Sprintf("%.3f", eff))
	}
	fmt.Println(at.String())
}
