// Command asmrun assembles a .s file and executes it on a chosen
// processor configuration, printing the final state and utilization
// breakdown.
//
// Usage:
//
//	asmrun -scheme interleaved -contexts 2 -copies 2 prog.s
//
// With -copies N the program is loaded into N contexts (each copy gets
// its own thread; they share the program's data).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prog"
	"repro/internal/stats"
)

func parseScheme(s string) (core.Scheme, error) {
	for sc := core.Scheme(0); int(sc) < core.NumSchemes; sc++ {
		if sc.String() == s {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("unknown scheme %q", s)
}

func main() {
	scheme := flag.String("scheme", "single", "context scheme")
	contexts := flag.Int("contexts", 1, "hardware contexts")
	copies := flag.Int("copies", 1, "thread copies of the program to load")
	limit := flag.Int64("limit", 100_000_000, "cycle limit")
	trace := flag.Bool("trace", false, "print a per-cycle issue trace")
	list := flag.Bool("list", false, "print the assembled listing and exit")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "asmrun:", err)
		os.Exit(1)
	}

	if flag.NArg() != 1 {
		die(fmt.Errorf("usage: asmrun [flags] file.s"))
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		die(err)
	}
	sc, err := parseScheme(*scheme)
	if err != nil {
		die(err)
	}
	p, err := prog.Assemble(flag.Arg(0), 0x1000, 0x4000_0000, 1<<24, string(src))
	if err != nil {
		die(err)
	}
	if *list {
		fmt.Print(p.Listing())
		return
	}

	fm := mem.New()
	p.LoadInit(fm)
	h, err := cache.NewHierarchy(cache.DefaultParams())
	if err != nil {
		die(err)
	}
	proc, err := core.NewProcessor(core.DefaultConfig(sc, *contexts), h, fm)
	if err != nil {
		die(err)
	}
	if *trace {
		proc.Trace = func(ev core.TraceEvent) {
			if ev.Inst != "" {
				fmt.Printf("%8d  ctx%d  %s\n", ev.Cycle, ev.Ctx, ev.Inst)
			}
		}
	}

	var threads []*core.Thread
	for c := 0; c < *copies && c < *contexts; c++ {
		th := core.NewThread(fmt.Sprintf("t%d", c), p)
		th.SetIntReg(isa.R4, uint32(c))       // tid convention
		th.SetIntReg(isa.R5, uint32(*copies)) // nthreads convention
		proc.BindThread(c, th)
		threads = append(threads, th)
	}

	cycles, done := proc.RunUntilHalted(*limit)
	if !done {
		die(fmt.Errorf("did not halt within %d cycles", *limit))
	}

	fmt.Printf("%s: %d thread(s) on %v/%d — %d cycles, %d instructions (IPC %.3f)\n\n",
		p.Name, len(threads), sc, *contexts, cycles, proc.Stats.Retired, proc.Stats.IPC())
	bd := proc.Stats.Breakdown()
	t := stats.NewTable("category", "fraction")
	t.AddRow("busy", stats.Pct(bd.Busy+bd.Sync))
	t.AddRow("instruction stall", stats.Pct(bd.InstrShort+bd.InstrLong))
	t.AddRow("inst cache", stats.Pct(bd.InstCache))
	t.AddRow("data cache/TLB", stats.Pct(bd.DataMem))
	t.AddRow("context switch", stats.Pct(bd.Switch))
	fmt.Println(t.String())

	fmt.Println("\nfinal integer registers (nonzero, thread 0):")
	for r := isa.R1; r <= isa.R31; r++ {
		if v := threads[0].IntReg(r); v != 0 {
			fmt.Printf("  %-4v = %d (%#x)\n", r, v, v)
		}
	}
}
