// Command mpsim runs one SPLASH-like application on the simulated
// multiprocessor and prints its execution time and breakdown — the
// building block of the paper's Table 10 and Figures 8-9.
//
// Usage:
//
//	mpsim -app mp3d -scheme interleaved -contexts 4 -procs 8
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/mp"
	"repro/internal/prog"
	"repro/internal/splash"
	"repro/internal/stats"
)

func parseScheme(s string) (core.Scheme, error) {
	for sc := core.Scheme(0); int(sc) < core.NumSchemes; sc++ {
		if sc.String() == s {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("unknown scheme %q", s)
}

func yieldFor(s core.Scheme) prog.YieldMode {
	switch s {
	case core.Blocked, core.BlockedFast:
		return prog.YieldSwitch
	case core.Interleaved:
		return prog.YieldBackoff
	default:
		return prog.YieldNone
	}
}

func main() {
	appName := flag.String("app", "mp3d", "application (mp3d barnes water ocean locus pthor cholesky)")
	scheme := flag.String("scheme", "interleaved", "context scheme")
	contexts := flag.Int("contexts", 4, "hardware contexts per processor")
	procs := flag.Int("procs", 8, "processors")
	steps := flag.Int("steps", 0, "time steps (0 = app default)")
	limit := flag.Int64("limit", 200_000_000, "cycle limit")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "mpsim:", err)
		os.Exit(1)
	}

	sc, err := parseScheme(*scheme)
	if err != nil {
		die(err)
	}
	if sc == core.Single {
		*contexts = 1
	}
	app, err := splash.Lookup(*appName)
	if err != nil {
		die(err)
	}

	cfg := mp.DefaultConfig(sc, *contexts)
	cfg.Processors = *procs
	cfg.LimitCycles = *limit
	p := app.Build(splash.Options{
		CodeBase:     0x0100_0000,
		DataBase:     0x5000_0000,
		Yield:        yieldFor(sc),
		AutoTolerate: sc != core.Single,
		NumThreads:   *procs * *contexts,
		Steps:        *steps,
	})
	res, err := mp.Run(p, cfg)
	if err != nil {
		die(err)
	}
	if !res.Completed {
		die(fmt.Errorf("%s did not complete within %d cycles", *appName, *limit))
	}

	fmt.Printf("%s: %d processors x %d context(s) (%d threads), scheme %v\n",
		*appName, *procs, *contexts, res.Threads, sc)
	fmt.Printf("execution time: %d cycles\n\n", res.Cycles)

	bd := res.Stats.Breakdown()
	t := stats.NewTable("category", "fraction")
	t.AddRow("busy", stats.Pct(bd.Busy))
	t.AddRow("instruction (short)", stats.Pct(bd.InstrShort))
	t.AddRow("instruction (long)", stats.Pct(bd.InstrLong))
	t.AddRow("memory", stats.Pct(bd.DataMem))
	t.AddRow("synchronization", stats.Pct(bd.Sync))
	t.AddRow("context switch", stats.Pct(bd.Switch))
	t.AddRow("idle", stats.Pct(bd.Idle))
	fmt.Println(t.String())
}
