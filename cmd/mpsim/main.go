// Command mpsim runs one SPLASH-like application on the simulated
// multiprocessor and prints its execution time and breakdown — the
// building block of the paper's Table 10 and Figures 8-9.
//
// Usage:
//
//	mpsim -app mp3d -scheme interleaved -contexts 4 -procs 8
//	mpsim -app mp3d -scheme interleaved -contexts 1,2,4,8 -j 4
//
// A comma-separated -contexts list fans the runs out across -j workers
// (default: all CPUs) and prints them in list order; -j 1 runs serially.
//
// SIGINT/SIGTERM drain the run gracefully: queued configurations are
// skipped, running simulations stop within one lockstep block, completed
// configurations are still printed, and the command exits with code 3.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/guard"
	"repro/internal/metrics"
	"repro/internal/mp"
	"repro/internal/profiling"
	"repro/internal/prog"
	"repro/internal/splash"
	"repro/internal/stats"
)

func parseScheme(s string) (core.Scheme, error) {
	for sc := core.Scheme(0); int(sc) < core.NumSchemes; sc++ {
		if sc.String() == s {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("unknown scheme %q", s)
}

func yieldFor(s core.Scheme) prog.YieldMode {
	switch s {
	case core.Blocked, core.BlockedFast:
		return prog.YieldSwitch
	case core.Interleaved:
		return prog.YieldBackoff
	default:
		return prog.YieldNone
	}
}

func main() {
	os.Exit(run(os.Args[1:]))
}

// completedHook, when non-nil, is called after configuration i's
// simulation completes (before any reporting). The drain tests use it to
// raise SIGINT partway through a -contexts list.
var completedHook func(i int)

// run is main with an explicit exit code so the signal-drain path is
// testable in-process: 0 success, 1 failure, 2 usage, 3 interrupted.
func run(args []string) int {
	fs := flag.NewFlagSet("mpsim", flag.ContinueOnError)
	appName := fs.String("app", "mp3d", "application (mp3d barnes water ocean locus pthor cholesky)")
	scheme := fs.String("scheme", "interleaved", "context scheme")
	contexts := fs.String("contexts", "4", "hardware contexts per processor (comma-separated list fans out)")
	procs := fs.Int("procs", 8, "processors")
	steps := fs.Int("steps", 0, "time steps (0 = app default)")
	limit := fs.Int64("limit", 200_000_000, "cycle limit")
	jobs := fs.Int("j", runtime.NumCPU(), "concurrent simulations for a -contexts list (1 = serial)")
	gopts := guard.BindFlags(fs)
	prof := profiling.BindFlags(fs)
	obs := metrics.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return experiments.ExitUsage
	}

	// On failure, print the structured diagnostic (when the error carries
	// one) instead of a raw panic stack, and exit non-zero.
	die := func(err error) int {
		fmt.Fprintln(os.Stderr, "mpsim:", guard.Report(err))
		return experiments.ExitFailure
	}

	// SIGINT/SIGTERM cancel this context; the pool drains and the
	// simulation loop observes the cancellation at block granularity.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	stopProf, err := prof.Start()
	if err != nil {
		return die(err)
	}
	defer stopProf()

	sc, err := parseScheme(*scheme)
	if err != nil {
		return die(err)
	}
	var counts []int
	for _, c := range strings.Split(*contexts, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(c))
		if err != nil || n < 1 {
			return die(fmt.Errorf("bad -contexts value %q", c))
		}
		if sc == core.Single {
			n = 1
		}
		counts = append(counts, n)
	}
	app, err := splash.Lookup(*appName)
	if err != nil {
		return die(err)
	}

	// Fan the configurations out; results land in run order so the report
	// below is independent of completion order. With -chaos, each
	// configuration also runs unperturbed and the final memory is asserted
	// byte-identical: timing faults must never leak into functional state.
	// (Racy apps — mp3d's unsynchronized scatter — are exempt: their memory
	// results are scheduling-dependent by construction.)
	results := make([]*mp.Result, len(counts))
	err = experiments.NewPool(*jobs).Run(ctx, len(counts), func(ctx context.Context, i int) error {
		cfg := mp.DefaultConfig(sc, counts[i])
		cfg.Processors = *procs
		cfg.LimitCycles = *limit
		cfg.Guard = *gopts
		cfg.Obs = obs.Options()
		p := app.Build(splash.Options{
			CodeBase:     0x0100_0000,
			DataBase:     0x5000_0000,
			Yield:        yieldFor(sc),
			AutoTolerate: sc != core.Single,
			NumThreads:   *procs * counts[i],
			Steps:        *steps,
		})
		res, err := mp.RunCtx(ctx, p, cfg)
		if err != nil {
			return err
		}
		if !res.Completed {
			return fmt.Errorf("%s did not complete within %d cycles", *appName, *limit)
		}
		if gopts.ChaosSeed != 0 && !app.Racy {
			baseCfg := cfg
			baseCfg.Guard.ChaosSeed = 0
			base, err := mp.RunCtx(ctx, p, baseCfg)
			if err != nil {
				return fmt.Errorf("chaos reference run: %w", err)
			}
			if base.MemHash != res.MemHash {
				return fmt.Errorf("chaos divergence with %d context(s): perturbed memory hash %#x != reference %#x — timing state leaked into functional state",
					counts[i], res.MemHash, base.MemHash)
			}
		}
		results[i] = res
		if completedHook != nil {
			completedHook(i)
		}
		return nil
	})
	interrupted := err != nil && guard.IsCancellation(err) && ctx.Err() != nil
	if err != nil && !interrupted {
		return die(err)
	}

	printed := 0
	for i, res := range results {
		if res == nil {
			continue // interrupted before this configuration completed
		}
		if printed > 0 {
			fmt.Println()
		}
		printed++
		fmt.Printf("%s: %d processors x %d context(s) (%d threads), scheme %v\n",
			*appName, *procs, counts[i], res.Threads, sc)
		fmt.Printf("execution time: %d cycles\n", res.Cycles)
		if gopts.ChaosSeed != 0 {
			if app.Racy {
				fmt.Printf("chaos seed %d: byte-identity not checked (%s has unsynchronized shared writes)\n",
					gopts.ChaosSeed, *appName)
			} else {
				fmt.Printf("chaos seed %d: memory results byte-identical to unperturbed run (hash %#x)\n",
					gopts.ChaosSeed, res.MemHash)
			}
		}
		fmt.Println()

		bd := res.Stats.Breakdown()
		t := stats.NewTable("category", "fraction")
		t.AddRow("busy", stats.Pct(bd.Busy))
		t.AddRow("instruction (short)", stats.Pct(bd.InstrShort))
		t.AddRow("instruction (long)", stats.Pct(bd.InstrLong))
		t.AddRow("memory", stats.Pct(bd.DataMem))
		t.AddRow("synchronization", stats.Pct(bd.Sync))
		t.AddRow("context switch", stats.Pct(bd.Switch))
		t.AddRow("idle", stats.Pct(bd.Idle))
		fmt.Println(t.String())

		// With a -contexts list, each configuration gets its own suffixed
		// output file; a single run writes the paths as given.
		suffix := ""
		if len(counts) > 1 {
			suffix = fmt.Sprintf("%dctx", counts[i])
		}
		label := fmt.Sprintf("%s-%v-%dctx", *appName, sc, counts[i])
		if err := obs.Write(res.Metrics, label, suffix); err != nil {
			return die(err)
		}
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "mpsim: interrupted; %d of %d configurations completed\n", printed, len(counts))
		return experiments.ExitInterrupted
	}
	return 0
}
