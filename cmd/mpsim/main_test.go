package main

import (
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/experiments"
)

// raiseOnFirstCompletion installs a completedHook that delivers sig to
// this process after the first configuration completes, waits until the
// signal has actually been received, and gives the command's
// NotifyContext a moment to cancel — so with -j 1 the cancellation lands
// before the next configuration can start. The registered channel also
// keeps the signal from killing the test binary once run()'s handler is
// unregistered.
func raiseOnFirstCompletion(t *testing.T, sig os.Signal) {
	t.Helper()
	ch := make(chan os.Signal, 8)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	t.Cleanup(func() { signal.Stop(ch) })

	var once sync.Once
	completedHook = func(int) {
		once.Do(func() {
			p, err := os.FindProcess(os.Getpid())
			if err != nil {
				t.Errorf("FindProcess: %v", err)
				return
			}
			if err := p.Signal(sig); err != nil {
				t.Errorf("self-signal: %v", err)
				return
			}
			select {
			case <-ch:
			case <-time.After(5 * time.Second):
				t.Error("self-delivered signal never arrived")
			}
			time.Sleep(100 * time.Millisecond)
		})
	}
	t.Cleanup(func() { completedHook = nil })
}

// captureStdout redirects os.Stdout around fn and returns what it wrote.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	defer func() {
		os.Stdout = old
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

var drainArgs = []string{"-app", "ocean", "-scheme", "interleaved",
	"-contexts", "1,2,4", "-procs", "2", "-steps", "1", "-j", "1"}

// A SIGINT partway through a -contexts list must drain gracefully: the
// completed configurations are printed, the queued ones never run, and
// the command exits ExitInterrupted.
func TestMpsimSigintDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	raiseOnFirstCompletion(t, os.Interrupt)

	var code int
	out := captureStdout(t, func() {
		code = run(drainArgs)
	})
	if code != experiments.ExitInterrupted {
		t.Fatalf("exit code %d, want %d", code, experiments.ExitInterrupted)
	}
	completed := strings.Count(out, "execution time:")
	if completed < 1 {
		t.Error("no completed configuration was printed before the drain")
	}
	if completed >= 3 {
		t.Errorf("all %d configurations completed; the drain skipped nothing", completed)
	}
}

// SIGTERM takes the same drain path as SIGINT.
func TestMpsimSigtermDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	raiseOnFirstCompletion(t, syscall.SIGTERM)

	var code int
	out := captureStdout(t, func() {
		code = run(drainArgs)
	})
	if code != experiments.ExitInterrupted {
		t.Fatalf("exit code %d, want %d", code, experiments.ExitInterrupted)
	}
	if n := strings.Count(out, "execution time:"); n < 1 || n >= 3 {
		t.Errorf("%d configurations printed, want at least 1 and fewer than 3", n)
	}
}

// An undisturbed run of the same list exits 0 with every configuration
// printed — the drain tests' control.
func TestMpsimCompletesWithoutSignal(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var code int
	out := captureStdout(t, func() {
		code = run([]string{"-app", "ocean", "-scheme", "interleaved",
			"-contexts", "1,2", "-procs", "2", "-steps", "1", "-j", "1"})
	})
	if code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	if n := strings.Count(out, "execution time:"); n != 2 {
		t.Errorf("%d configurations printed, want 2", n)
	}
}
