package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/signal"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
)

// Regression: a failed -json write used to call os.Exit from inside a
// defer, which skipped the remaining defers AND (on the marshal-error
// path) could exit zero from a run whose output was never written. The
// write error must surface as a non-zero return from run.
func TestJSONWriteErrorPropagatesExitCode(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "out.json")
	if code := run([]string{"-only", "table4", "-json", bad, "-j", "1"}); code == 0 {
		t.Errorf("run with unwritable -json path returned %d, want non-zero", code)
	}
}

func TestJSONWriteSuccessExitsZero(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.json")
	if code := run([]string{"-only", "table4", "-json", out, "-j", "1"}); code != 0 {
		t.Fatalf("run returned %d, want 0", code)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("json output not written: %v", err)
	}
	var blob map[string]any
	if err := json.Unmarshal(data, &blob); err != nil {
		t.Fatalf("json output does not parse: %v", err)
	}
	if _, ok := blob["table4"]; !ok {
		t.Errorf("json blob missing table4 section: %v", blob)
	}
}

func TestBadFlagExitsNonZero(t *testing.T) {
	if code := run([]string{"-no-such-flag"}); code != experiments.ExitUsage {
		t.Errorf("run with an unknown flag returned %d, want %d", code, experiments.ExitUsage)
	}
}

func TestJournalAndResumeAreMutuallyExclusive(t *testing.T) {
	dir := t.TempDir()
	code := run([]string{
		"-journal", filepath.Join(dir, "a.journal"),
		"-resume", filepath.Join(dir, "b.journal"),
	})
	if code != experiments.ExitUsage {
		t.Errorf("run -journal + -resume returned %d, want %d", code, experiments.ExitUsage)
	}
}

func TestResumeMissingJournalFails(t *testing.T) {
	code := run([]string{"-quick", "-only", "table7",
		"-resume", filepath.Join(t.TempDir(), "no-such.journal")})
	if code != experiments.ExitFailure {
		t.Errorf("resume from a missing journal returned %d, want %d", code, experiments.ExitFailure)
	}
}

// absorbInterrupts keeps a test-local handler registered for SIGINT so a
// self-delivered interrupt that lands after run()'s own handler is
// unregistered cannot kill the test binary.
func absorbInterrupts(t *testing.T) {
	t.Helper()
	ch := make(chan os.Signal, 8)
	signal.Notify(ch, os.Interrupt)
	t.Cleanup(func() { signal.Stop(ch) })
}

// The end-to-end acceptance path, in-process: a run interrupted by a real
// SIGINT exits 3 with its completed cells journaled; resuming that
// journal exits 0 and produces -json output byte-identical to an
// uninterrupted run.
func TestInterruptThenResumeMatchesUninterrupted(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	absorbInterrupts(t)
	dir := t.TempDir()
	fullJSON := filepath.Join(dir, "full.json")
	partJSON := filepath.Join(dir, "part.json")
	resumedJSON := filepath.Join(dir, "resumed.json")
	partJournal := filepath.Join(dir, "part.journal")

	base := []string{"-quick", "-only", "table7", "-j", "2"}
	if code := run(append(base, "-json", fullJSON, "-journal", filepath.Join(dir, "full.journal"))); code != 0 {
		t.Fatalf("uninterrupted run returned %d", code)
	}

	code := run(append(base, "-json", partJSON, "-journal", partJournal, "-interrupt-after", "3"))
	if code != experiments.ExitInterrupted {
		t.Fatalf("interrupted run returned %d, want %d", code, experiments.ExitInterrupted)
	}
	if _, err := os.Stat(partJSON); err != nil {
		t.Fatalf("interrupted run did not flush its -json output: %v", err)
	}

	if code := run(append(base, "-json", resumedJSON, "-resume", partJournal)); code != 0 {
		t.Fatalf("resumed run returned %d", code)
	}
	full, err := os.ReadFile(fullJSON)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := os.ReadFile(resumedJSON)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full, resumed) {
		t.Error("resumed -json output differs from the uninterrupted run")
	}
}

// Resuming under different flags — here, a different -only selection —
// is the documented hard error with its own exit code.
func TestResumeFingerprintMismatchExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	absorbInterrupts(t)
	dir := t.TempDir()
	journal := filepath.Join(dir, "part.journal")
	code := run([]string{"-quick", "-only", "table7", "-j", "2",
		"-journal", journal, "-interrupt-after", "1"})
	if code != experiments.ExitInterrupted {
		t.Fatalf("interrupted run returned %d, want %d", code, experiments.ExitInterrupted)
	}
	code = run([]string{"-quick", "-only", "table7,fig6", "-j", "2", "-resume", journal})
	if code != experiments.ExitFingerprintMismatch {
		t.Errorf("resume under different flags returned %d, want %d", code, experiments.ExitFingerprintMismatch)
	}
}
