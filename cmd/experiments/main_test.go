package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// Regression: a failed -json write used to call os.Exit from inside a
// defer, which skipped the remaining defers AND (on the marshal-error
// path) could exit zero from a run whose output was never written. The
// write error must surface as a non-zero return from run.
func TestJSONWriteErrorPropagatesExitCode(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "out.json")
	if code := run([]string{"-only", "table4", "-json", bad, "-j", "1"}); code == 0 {
		t.Errorf("run with unwritable -json path returned %d, want non-zero", code)
	}
}

func TestJSONWriteSuccessExitsZero(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.json")
	if code := run([]string{"-only", "table4", "-json", out, "-j", "1"}); code != 0 {
		t.Fatalf("run returned %d, want 0", code)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("json output not written: %v", err)
	}
	var blob map[string]any
	if err := json.Unmarshal(data, &blob); err != nil {
		t.Fatalf("json output does not parse: %v", err)
	}
	if _, ok := blob["table4"]; !ok {
		t.Errorf("json blob missing table4 section: %v", blob)
	}
}

func TestBadFlagExitsNonZero(t *testing.T) {
	if code := run([]string{"-no-such-flag"}); code == 0 {
		t.Error("run with an unknown flag returned 0")
	}
}
