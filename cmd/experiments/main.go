// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-quick] [-j N] [-only table7,table10,table4,fig2,fig3,fig6,fig7,fig8,fig9,ablations,sweeps,response]
//
// With no -only flag every experiment runs (a few minutes at full scale;
// seconds with -quick). Independent simulation cells fan out across -j
// workers (default: all CPUs); -j 1 is the serial path. Output is
// byte-identical at every -j.
//
// Sensitivity sweeps whose swept parameter takes effect at the
// warm-up/measure boundary (switch cost, MSHRs) simulate their shared
// warm-up once and fork every cell from the checkpoint — byte-identical
// to, and faster than, simulating each warm-up. -no-checkpoint disables
// the sharing; -checkpoint-dir persists the checkpoints across runs.
//
// Crash safety: -journal records every completed grid cell durably
// (fsync per cell); -resume replays a journal's cells and simulates only
// the remainder, producing byte-identical output to an uninterrupted
// run. SIGINT/SIGTERM drain the run gracefully — queued cells are
// skipped, running cells stop within a bounded number of simulated
// cycles, completed work is flushed — and the command exits with code 3.
// Exit codes: 0 success, 1 cell failure or other error, 2 usage,
// 3 interrupted, 4 journal fingerprint mismatch.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/guard"
	"repro/internal/metrics"
	"repro/internal/profiling"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is main with an explicit exit code so failure paths are testable:
// every error — including a failed -json write, which used to os.Exit
// from inside a defer and skip the profile flush — propagates a non-zero
// code through the normal return path, after all defers have run.
func run(args []string) (code int) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced problem sizes (seconds instead of minutes)")
	only := fs.String("only", "", "comma-separated subset of experiments to run")
	jsonOut := fs.String("json", "", "also write raw results as JSON to this file")
	jobs := fs.Int("j", runtime.NumCPU(), "concurrent simulation cells (1 = serial)")
	journalPath := fs.String("journal", "", "record completed grid cells to this journal file (crash-safe; overwrites)")
	resumePath := fs.String("resume", "", "resume from this journal: replay its cells, run only the remainder, keep appending")
	allowBinaryMismatch := fs.Bool("allow-binary-mismatch", false, "resume a journal written by a different binary when the configuration is identical")
	cellTimeout := fs.Duration("cell-timeout", 0, "per-cell wall-clock budget; a cell exceeding it is retried once at a doubled budget, then fails (0 = off)")
	checkpointDir := fs.String("checkpoint-dir", "", "persist sweep warm-up checkpoints in this directory and reuse them across runs (default: in-memory only)")
	noCheckpoint := fs.Bool("no-checkpoint", false, "disable warm-up sharing: every sweep cell simulates its own warm-up")
	interruptAfter := fs.Int("interrupt-after", 0, "testing: raise SIGINT after this many journal appends")
	gopts := guard.BindFlags(fs)
	prof := profiling.BindFlags(fs)
	obs := metrics.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return experiments.ExitUsage
	}
	if *journalPath != "" && *resumePath != "" {
		fmt.Fprintln(os.Stderr, "experiments: -journal and -resume are mutually exclusive (resume keeps appending to the resumed journal)")
		return experiments.ExitUsage
	}

	fail := func(err error) int {
		var fpErr *experiments.FingerprintError
		var binErr *experiments.BinaryMismatchError
		switch {
		case errors.As(err, &fpErr), errors.As(err, &binErr):
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return experiments.ExitFingerprintMismatch
		case guard.IsCancellation(err):
			fmt.Fprintln(os.Stderr, "experiments: interrupted:", guard.Report(err))
			return experiments.ExitInterrupted
		}
		fmt.Fprintln(os.Stderr, "experiments:", guard.Report(err))
		return experiments.ExitFailure
	}

	// SIGINT/SIGTERM cancel this context: grids drain (running cells stop
	// within a bounded cycle count, queued ones never start), completed
	// work is flushed below, and the command exits ExitInterrupted.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	stopProf, err := prof.Start()
	if err != nil {
		return fail(err)
	}
	defer stopProf()

	// The JSON dump is written last (but before the profile flush above,
	// defers being LIFO), so a failing or interrupted grid still records
	// every completed cell; a failed write makes the command exit
	// non-zero. The write is atomic (temp + rename), so an existing file
	// survives any mid-write crash intact.
	jsonBlob := map[string]any{}
	defer func() {
		if *jsonOut == "" || len(jsonBlob) == 0 {
			return
		}
		data, err := json.MarshalIndent(jsonBlob, "", "  ")
		if err == nil {
			err = metrics.WriteFileAtomic(*jsonOut, func(w io.Writer) error {
				_, werr := w.Write(data)
				return werr
			})
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: json:", err)
			if code == 0 {
				code = experiments.ExitFailure
			}
			return
		}
		fmt.Fprintf(os.Stderr, "[raw results written to %s]\n", *jsonOut)
	}()

	want := map[string]bool{}
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	ucfg := experiments.DefaultUniConfig()
	mcfg := experiments.DefaultMPConfig()
	if *quick {
		ucfg = experiments.QuickUniConfig()
		mcfg = experiments.QuickMPConfig()
	}
	ucfg.Parallelism = *jobs
	mcfg.Parallelism = *jobs
	ucfg.CellTimeout = *cellTimeout
	mcfg.CellTimeout = *cellTimeout
	ucfg.Guard = *gopts
	mcfg.Guard = *gopts
	ucfg.Obs = obs.Options()
	mcfg.Obs = obs.Options()
	ucfg.Checkpoint = experiments.CheckpointOptions{Disabled: *noCheckpoint, Dir: *checkpointDir}
	if *checkpointDir != "" && !*noCheckpoint {
		if err := os.MkdirAll(*checkpointDir, 0o755); err != nil {
			return fail(err)
		}
	}

	needUni := experiments.NeedUni(sel)
	needMP := experiments.NeedMP(sel)

	if *journalPath != "" || *resumePath != "" {
		// The fingerprint covers everything that determines cell results:
		// the resolved grid configs (shapes, seeds, guard/chaos flags),
		// the experiment selection, and the binary. Resuming under any
		// drift is a hard error — replayed cells would silently disagree
		// with what this run would simulate.
		var uniFP *experiments.UniConfig
		var mpFP *experiments.MPConfig
		if needUni {
			uniFP = &ucfg
		}
		if needMP {
			mpFP = &mcfg
		}
		onlyList := make([]string, 0, len(want))
		for n := range want {
			onlyList = append(onlyList, n)
		}
		sort.Strings(onlyList)
		fp := experiments.NewFingerprint(uniFP, mpFP, onlyList)

		var journal *experiments.Journal
		var err error
		if *resumePath != "" {
			journal, err = experiments.OpenJournalAllow(*resumePath, fp, *allowBinaryMismatch, func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "experiments: warning: "+format+"\n", args...)
			})
			if err == nil {
				fmt.Fprintf(os.Stderr, "[resuming from %s: %d completed cells to replay]\n", *resumePath, journal.Cells())
			}
		} else {
			journal, err = experiments.CreateJournal(*journalPath, fp)
		}
		if err != nil {
			return fail(err)
		}
		defer journal.Close()
		if *interruptAfter > 0 {
			// Test harness for the interrupt-resume determinism check:
			// deliver a real SIGINT to ourselves partway through the grid,
			// exercising the same signal path an operator's Ctrl-C does.
			var once sync.Once
			n := *interruptAfter
			journal.SetAppendHook(func(appended int) {
				if appended >= n {
					once.Do(func() {
						p, _ := os.FindProcess(os.Getpid())
						p.Signal(os.Interrupt)
					})
				}
			})
		}
		ucfg.Journal = journal
		mcfg.Journal = journal
	}

	if sel("table4") {
		r, err := experiments.Table4()
		if err != nil {
			return fail(err)
		}
		jsonBlob["table4"] = r
		fmt.Println(experiments.FormatTable4(r))
		fmt.Println()
	}

	if sel("fig2") || sel("fig3") {
		if sel("fig2") {
			b, i, err := experiments.Figure2()
			if err != nil {
				return fail(err)
			}
			fmt.Println("Figure 2: switch cost of a data miss with four active contexts")
			fmt.Printf("(blocked pays %d switch slots, interleaved %d)\n\n",
				b.Stats.Slots[core.SlotSwitch], i.Stats.Slots[core.SlotSwitch])
			fmt.Print(experiments.FormatTimeline(b))
			fmt.Print(experiments.FormatTimeline(i))
			fmt.Println()
		}
		if sel("fig3") {
			b, i, err := experiments.Figure3()
			if err != nil {
				return fail(err)
			}
			fmt.Println("Figure 3: four example threads (A:2, B:3 with dependency, C:4, D:6 insns),")
			fmt.Println("each ending in a cache miss")
			fmt.Println()
			fmt.Print(experiments.FormatTimeline(b))
			fmt.Print(experiments.FormatTimeline(i))
			fmt.Printf("\nblocked finishes in %d cycles, interleaved in %d\n\n", b.Cycles, i.Cycles)
		}
	}

	var uni *experiments.UniResult
	if needUni {
		start := time.Now()
		r, err := experiments.RunUniprocessorCtx(ctx, ucfg)
		if err != nil {
			return fail(err)
		}
		uni = r
		jsonBlob["workstation"] = r
		fmt.Fprintf(os.Stderr, "[workstation evaluation: %v]\n", time.Since(start).Round(time.Millisecond))
		if r.Failures > 0 {
			for _, c := range r.Cells {
				if c.Failed {
					fmt.Fprintf(os.Stderr, "experiments: workstation cell %s/%v/%d FAILED: %s\n",
						c.Workload, c.Scheme, c.Contexts, c.Failure)
					if c.Diagnostic != "" {
						fmt.Fprintln(os.Stderr, c.Diagnostic)
					}
				}
			}
			code = experiments.ExitFailure
		}
		if r.Skipped > 0 {
			fmt.Fprintf(os.Stderr, "experiments: workstation grid interrupted: %d cells skipped\n", r.Skipped)
		}
		var cells []obsCell
		for _, c := range r.Cells {
			cells = append(cells, obsCell{
				label: fmt.Sprintf("%s-%v-%dctx", c.Workload, c.Scheme, c.Contexts),
				m:     c.Metrics,
			})
		}
		if err := writeGridMetrics(obs, "workstation", cells); err != nil {
			return fail(err)
		}
	}
	// The grid sections print through the shared renderer so a distributed
	// run of the same grids reproduces these bytes exactly.
	if needUni {
		fmt.Print(experiments.RenderUniSections(sel, uni))
	}

	var mpr *experiments.MPResult
	if needMP {
		start := time.Now()
		r, err := experiments.RunMultiprocessorCtx(ctx, mcfg)
		if err != nil {
			return fail(err)
		}
		mpr = r
		jsonBlob["multiprocessor"] = r
		fmt.Fprintf(os.Stderr, "[multiprocessor evaluation: %v]\n", time.Since(start).Round(time.Millisecond))
		if r.Failures > 0 {
			for _, c := range r.Cells {
				if c.Failed {
					fmt.Fprintf(os.Stderr, "experiments: multiprocessor cell %s/%v/%d FAILED: %s\n",
						c.App, c.Scheme, c.Contexts, c.Failure)
					if c.Diagnostic != "" {
						fmt.Fprintln(os.Stderr, c.Diagnostic)
					}
				}
			}
			code = experiments.ExitFailure
		}
		if r.Skipped > 0 {
			fmt.Fprintf(os.Stderr, "experiments: multiprocessor grid interrupted: %d cells skipped\n", r.Skipped)
		}
		var cells []obsCell
		for _, c := range r.Cells {
			cells = append(cells, obsCell{
				label: fmt.Sprintf("%s-%v-%dctx", c.App, c.Scheme, c.Contexts),
				m:     c.Metrics,
			})
		}
		if err := writeGridMetrics(obs, "multiprocessor", cells); err != nil {
			return fail(err)
		}
	}
	if needMP {
		fmt.Print(experiments.RenderMPSections(sel, mpr))
	}

	// The remaining sections have no SKIP rendering of their own; once
	// the run is interrupted, skip them outright rather than starting
	// work that would drain immediately.
	skipInterrupted := func(name string) bool {
		if ctx.Err() == nil {
			return false
		}
		fmt.Fprintf(os.Stderr, "[skipping %s: interrupted]\n", name)
		return true
	}

	if sel("ablations") && !skipInterrupted("ablations") {
		start := time.Now()
		r, err := experiments.RunAblationsCtx(ctx, ucfg)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "[ablations: %v]\n", time.Since(start).Round(time.Millisecond))
		fmt.Println(experiments.FormatAblations(r))
	}

	if sel("response") && !skipInterrupted("response") {
		rcfg := experiments.DefaultResponseConfig()
		rcfg.Parallelism = *jobs
		r, err := experiments.RunResponseCtx(ctx, rcfg)
		if err != nil {
			return fail(err)
		}
		fmt.Println(experiments.FormatResponse(r))
		fmt.Println()
	}

	if sel("sweeps") && !skipInterrupted("sweeps") {
		start := time.Now()
		sweepBlob := map[string]*experiments.SweepResult{}
		runSweep := func(key string, run func() (*experiments.SweepResult, error)) error {
			r, err := run()
			if err != nil {
				return err
			}
			sweepBlob[key] = r
			fmt.Println(experiments.FormatSweep(r))
			fmt.Println()
			return nil
		}
		if err := runSweep("switch_cost", func() (*experiments.SweepResult, error) {
			return experiments.SwitchCostSweepCtx(ctx, ucfg, "DC")
		}); err != nil {
			return fail(err)
		}
		if err := runSweep("context_count", func() (*experiments.SweepResult, error) {
			return experiments.ContextCountSweepCtx(ctx, ucfg, "DC")
		}); err != nil {
			return fail(err)
		}
		if err := runSweep("mshr", func() (*experiments.SweepResult, error) {
			return experiments.MSHRSweepCtx(ctx, ucfg, "DC")
		}); err != nil {
			return fail(err)
		}
		if err := runSweep("remote_latency", func() (*experiments.SweepResult, error) {
			return experiments.RemoteLatencySweepCtx(ctx, mcfg, "ocean")
		}); err != nil {
			return fail(err)
		}
		if err := runSweep("issue_width", func() (*experiments.SweepResult, error) {
			return experiments.IssueWidthSweepCtx(ctx, ucfg, "R1")
		}); err != nil {
			return fail(err)
		}
		jsonBlob["sweeps"] = sweepBlob
		if r, err := experiments.RunPrefetchComparisonCtx(ctx, ucfg); err != nil {
			return fail(err)
		} else {
			fmt.Println(experiments.FormatPrefetchComparison(r))
		}
		fmt.Fprintf(os.Stderr, "[sweeps: %v]\n", time.Since(start).Round(time.Millisecond))
	}

	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "experiments: interrupted; completed cells were flushed"+
			resumeHint(*journalPath, *resumePath))
		return experiments.ExitInterrupted
	}
	return code
}

// resumeHint names the journal an interrupted run can be resumed from.
func resumeHint(journalPath, resumePath string) string {
	switch {
	case journalPath != "":
		return fmt.Sprintf(" (resume with -resume %s)", journalPath)
	case resumePath != "":
		return fmt.Sprintf(" (resume with -resume %s)", resumePath)
	}
	return ""
}

// obsCell pairs one grid cell's observability record with its label.
type obsCell struct {
	label string
	m     *metrics.CellMetrics
}

// writeGridMetrics exports a grid's observability records: every cell
// concatenates into one JSON-lines file (each introduced by its "cell"
// delimiter line), while traces — one Chrome trace JSON object per cell —
// go to individually suffixed files. prefix keeps the workstation and
// multiprocessor grids from overwriting each other's output. All files
// are written atomically (temp + rename).
func writeGridMetrics(f *metrics.Flags, prefix string, cells []obsCell) error {
	if f.MetricsOut != "" {
		err := metrics.WriteFileAtomic(metrics.SuffixPath(f.MetricsOut, prefix), func(w io.Writer) error {
			for _, c := range cells {
				if c.m == nil {
					continue
				}
				if err := metrics.WriteJSONL(w, c.m, c.label); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	if f.TraceOut != "" {
		for _, c := range cells {
			if c.m == nil {
				continue
			}
			err := metrics.WriteFileAtomic(metrics.SuffixPath(f.TraceOut, prefix+"."+c.label), func(w io.Writer) error {
				return metrics.WriteChromeTrace(w, c.m)
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}
