// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-quick] [-j N] [-only table7,table10,table4,fig2,fig3,fig6,fig7,fig8,fig9,ablations,sweeps,response]
//
// With no -only flag every experiment runs (a few minutes at full scale;
// seconds with -quick). Independent simulation cells fan out across -j
// workers (default: all CPUs); -j 1 is the serial path. Output is
// byte-identical at every -j.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/guard"
	"repro/internal/metrics"
	"repro/internal/profiling"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is main with an explicit exit code so failure paths are testable:
// every error — including a failed -json write, which used to os.Exit
// from inside a defer and skip the profile flush — propagates a non-zero
// code through the normal return path, after all defers have run.
func run(args []string) (code int) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced problem sizes (seconds instead of minutes)")
	only := fs.String("only", "", "comma-separated subset of experiments to run")
	jsonOut := fs.String("json", "", "also write raw results as JSON to this file")
	jobs := fs.Int("j", runtime.NumCPU(), "concurrent simulation cells (1 = serial)")
	gopts := guard.BindFlags(fs)
	prof := profiling.BindFlags(fs)
	obs := metrics.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "experiments:", guard.Report(err))
		return 1
	}

	stopProf, err := prof.Start()
	if err != nil {
		return fail(err)
	}
	defer stopProf()

	// The JSON dump is written last (but before the profile flush above,
	// defers being LIFO), so a failing grid still records every completed
	// cell; a failed write makes the command exit non-zero.
	jsonBlob := map[string]any{}
	defer func() {
		if *jsonOut == "" || len(jsonBlob) == 0 {
			return
		}
		data, err := json.MarshalIndent(jsonBlob, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: json:", err)
			if code == 0 {
				code = 1
			}
			return
		}
		fmt.Fprintf(os.Stderr, "[raw results written to %s]\n", *jsonOut)
	}()

	want := map[string]bool{}
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	ucfg := experiments.DefaultUniConfig()
	mcfg := experiments.DefaultMPConfig()
	if *quick {
		ucfg = experiments.QuickUniConfig()
		mcfg = experiments.QuickMPConfig()
	}
	ucfg.Parallelism = *jobs
	mcfg.Parallelism = *jobs
	ucfg.Guard = *gopts
	mcfg.Guard = *gopts
	ucfg.Obs = obs.Options()
	mcfg.Obs = obs.Options()

	if sel("table4") {
		r, err := experiments.Table4()
		if err != nil {
			return fail(err)
		}
		jsonBlob["table4"] = r
		fmt.Println(experiments.FormatTable4(r))
		fmt.Println()
	}

	if sel("fig2") || sel("fig3") {
		if sel("fig2") {
			b, i, err := experiments.Figure2()
			if err != nil {
				return fail(err)
			}
			fmt.Println("Figure 2: switch cost of a data miss with four active contexts")
			fmt.Printf("(blocked pays %d switch slots, interleaved %d)\n\n",
				b.Stats.Slots[core.SlotSwitch], i.Stats.Slots[core.SlotSwitch])
			fmt.Print(experiments.FormatTimeline(b))
			fmt.Print(experiments.FormatTimeline(i))
			fmt.Println()
		}
		if sel("fig3") {
			b, i, err := experiments.Figure3()
			if err != nil {
				return fail(err)
			}
			fmt.Println("Figure 3: four example threads (A:2, B:3 with dependency, C:4, D:6 insns),")
			fmt.Println("each ending in a cache miss")
			fmt.Println()
			fmt.Print(experiments.FormatTimeline(b))
			fmt.Print(experiments.FormatTimeline(i))
			fmt.Printf("\nblocked finishes in %d cycles, interleaved in %d\n\n", b.Cycles, i.Cycles)
		}
	}

	var uni *experiments.UniResult
	needUni := sel("table7") || sel("fig6") || sel("fig7")
	if needUni {
		start := time.Now()
		r, err := experiments.RunUniprocessor(ucfg)
		if err != nil {
			return fail(err)
		}
		uni = r
		jsonBlob["workstation"] = r
		fmt.Fprintf(os.Stderr, "[workstation evaluation: %v]\n", time.Since(start).Round(time.Millisecond))
		if r.Failures > 0 {
			for _, c := range r.Cells {
				if c.Failed {
					fmt.Fprintf(os.Stderr, "experiments: workstation cell %s/%v/%d FAILED: %s\n",
						c.Workload, c.Scheme, c.Contexts, c.Failure)
					if c.Diagnostic != "" {
						fmt.Fprintln(os.Stderr, c.Diagnostic)
					}
				}
			}
			code = 1
		}
		var cells []obsCell
		for _, c := range r.Cells {
			cells = append(cells, obsCell{
				label: fmt.Sprintf("%s-%v-%dctx", c.Workload, c.Scheme, c.Contexts),
				m:     c.Metrics,
			})
		}
		if err := writeGridMetrics(obs, "workstation", cells); err != nil {
			return fail(err)
		}
	}
	if sel("table7") {
		fmt.Println(experiments.FormatTable7(uni))
		fmt.Println()
	}
	if sel("fig6") {
		fmt.Println(experiments.FormatFigure(uni, core.Blocked, 6))
	}
	if sel("fig7") {
		fmt.Println(experiments.FormatFigure(uni, core.Interleaved, 7))
	}

	var mpr *experiments.MPResult
	needMP := sel("table10") || sel("fig8") || sel("fig9")
	if needMP {
		start := time.Now()
		r, err := experiments.RunMultiprocessor(mcfg)
		if err != nil {
			return fail(err)
		}
		mpr = r
		jsonBlob["multiprocessor"] = r
		fmt.Fprintf(os.Stderr, "[multiprocessor evaluation: %v]\n", time.Since(start).Round(time.Millisecond))
		if r.Failures > 0 {
			for _, c := range r.Cells {
				if c.Failed {
					fmt.Fprintf(os.Stderr, "experiments: multiprocessor cell %s/%v/%d FAILED: %s\n",
						c.App, c.Scheme, c.Contexts, c.Failure)
					if c.Diagnostic != "" {
						fmt.Fprintln(os.Stderr, c.Diagnostic)
					}
				}
			}
			code = 1
		}
		var cells []obsCell
		for _, c := range r.Cells {
			cells = append(cells, obsCell{
				label: fmt.Sprintf("%s-%v-%dctx", c.App, c.Scheme, c.Contexts),
				m:     c.Metrics,
			})
		}
		if err := writeGridMetrics(obs, "multiprocessor", cells); err != nil {
			return fail(err)
		}
	}
	if sel("table10") {
		fmt.Println(experiments.FormatTable10(mpr))
		fmt.Println()
	}
	if sel("fig8") {
		fmt.Println(experiments.FormatMPFigure(mpr, core.Blocked, 8))
	}
	if sel("fig9") {
		fmt.Println(experiments.FormatMPFigure(mpr, core.Interleaved, 9))
	}

	if sel("ablations") {
		start := time.Now()
		r, err := experiments.RunAblations(ucfg)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "[ablations: %v]\n", time.Since(start).Round(time.Millisecond))
		fmt.Println(experiments.FormatAblations(r))
	}

	if sel("response") {
		rcfg := experiments.DefaultResponseConfig()
		rcfg.Parallelism = *jobs
		r, err := experiments.RunResponse(rcfg)
		if err != nil {
			return fail(err)
		}
		fmt.Println(experiments.FormatResponse(r))
		fmt.Println()
	}

	if sel("sweeps") {
		start := time.Now()
		if r, err := experiments.SwitchCostSweep(ucfg, "DC"); err != nil {
			return fail(err)
		} else {
			fmt.Println(experiments.FormatSweep(r))
			fmt.Println()
		}
		if r, err := experiments.ContextCountSweep(ucfg, "DC"); err != nil {
			return fail(err)
		} else {
			fmt.Println(experiments.FormatSweep(r))
			fmt.Println()
		}
		if r, err := experiments.MSHRSweep(ucfg, "DC"); err != nil {
			return fail(err)
		} else {
			fmt.Println(experiments.FormatSweep(r))
			fmt.Println()
		}
		if r, err := experiments.RemoteLatencySweep(mcfg, "ocean"); err != nil {
			return fail(err)
		} else {
			fmt.Println(experiments.FormatSweep(r))
			fmt.Println()
		}
		if r, err := experiments.IssueWidthSweep(ucfg, "R1"); err != nil {
			return fail(err)
		} else {
			fmt.Println(experiments.FormatSweep(r))
			fmt.Println()
		}
		if r, err := experiments.RunPrefetchComparison(ucfg); err != nil {
			return fail(err)
		} else {
			fmt.Println(experiments.FormatPrefetchComparison(r))
		}
		fmt.Fprintf(os.Stderr, "[sweeps: %v]\n", time.Since(start).Round(time.Millisecond))
	}
	return code
}

// obsCell pairs one grid cell's observability record with its label.
type obsCell struct {
	label string
	m     *metrics.CellMetrics
}

// writeGridMetrics exports a grid's observability records: every cell
// concatenates into one JSON-lines file (each introduced by its "cell"
// delimiter line), while traces — one Chrome trace JSON object per cell —
// go to individually suffixed files. prefix keeps the workstation and
// multiprocessor grids from overwriting each other's output.
func writeGridMetrics(f *metrics.Flags, prefix string, cells []obsCell) error {
	if f.MetricsOut != "" {
		file, err := os.Create(metrics.SuffixPath(f.MetricsOut, prefix))
		if err != nil {
			return err
		}
		for _, c := range cells {
			if c.m == nil {
				continue
			}
			if err := metrics.WriteJSONL(file, c.m, c.label); err != nil {
				file.Close()
				return err
			}
		}
		if err := file.Close(); err != nil {
			return err
		}
	}
	if f.TraceOut != "" {
		for _, c := range cells {
			if c.m == nil {
				continue
			}
			file, err := os.Create(metrics.SuffixPath(f.TraceOut, prefix+"."+c.label))
			if err != nil {
				return err
			}
			if err := metrics.WriteChromeTrace(file, c.m); err != nil {
				file.Close()
				return err
			}
			if err := file.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}
