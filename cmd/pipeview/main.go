// Command pipeview renders the paper's Figure 2 and Figure 3 pipeline
// timelines as text: one character per issue slot, naming the issuing
// context or the kind of lost slot.
//
// Usage:
//
//	pipeview -figure 3
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	figure := flag.Int("figure", 3, "figure to render (2 or 3)")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "pipeview:", err)
		os.Exit(1)
	}

	switch *figure {
	case 2:
		b, i, err := experiments.Figure2()
		if err != nil {
			die(err)
		}
		fmt.Println("Figure 2: cost of one data miss with four active contexts.")
		fmt.Println("Letters name the issuing context; '*' marks context-switch overhead,")
		fmt.Println("'m' memory wait, '.' pipeline stall.")
		fmt.Println()
		fmt.Print(experiments.FormatTimeline(b))
		fmt.Println()
		fmt.Print(experiments.FormatTimeline(i))
		fmt.Printf("\nswitch overhead: blocked %d slots, interleaved %d slots (paper: 7 vs 2)\n",
			b.Stats.Slots[core.SlotSwitch], i.Stats.Slots[core.SlotSwitch])
	case 3:
		b, i, err := experiments.Figure3()
		if err != nil {
			die(err)
		}
		fmt.Println("Figure 3: four threads — A: 2 insns; B: 3 insns with a two-cycle")
		fmt.Println("dependency; C: 4 insns; D: 6 insns — each ending in a cache miss.")
		fmt.Println()
		fmt.Print(experiments.FormatTimeline(b))
		fmt.Println()
		fmt.Print(experiments.FormatTimeline(i))
		fmt.Printf("\ncompletion: blocked %d cycles, interleaved %d cycles\n", b.Cycles, i.Cycles)
		fmt.Printf("short pipeline-dependency stalls: blocked %d, interleaved %d (B's dependency hidden)\n",
			b.Stats.Slots[core.SlotStallShort], i.Stats.Slots[core.SlotStallShort])
	default:
		die(fmt.Errorf("figure must be 2 or 3"))
	}
}
