// Command interleavefuzz is the cross-scheme differential interleaving
// fuzzer: it generates race-free SPMD programs, runs each under
// systematically varied context orderings across every scheme and
// machine model, and fails if final memory (or any stricter digest) ever
// depends on the multiplexing policy.
//
// Usage:
//
//	interleavefuzz [-n N] [-seed S] [-j N] [-quick] [-corpus DIR] [-json FILE]
//	interleavefuzz -replay <reproducer dir or repro.json>
//
// A sweep generates -n programs from the base seed and fans each
// program's cell grid (orderings × schemes × machines × fast-forward ×
// chaos) across -j workers; output is byte-identical at every -j.
// -corpus enables shrinking: a failing program is minimized and written
// as a reproducer (repro.json + re-assemblable repro.s). -replay re-runs
// a reproducer's exact cell grid and reports its divergences.
//
// Exit codes follow the repo convention: 0 clean, 1 divergence or cell
// failure, 2 usage, 3 interrupted (SIGINT/SIGTERM drain).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"repro/internal/experiments"
	"repro/internal/fuzz"
	"repro/internal/guard"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("interleavefuzz", flag.ContinueOnError)
	n := fs.Int("n", 24, "programs to generate and sweep")
	seed := fs.Int64("seed", 20260808, "base seed (per-program seeds are derived)")
	threads := fs.Int("threads", 0, "threads per program (0: vary 2..4)")
	jobs := fs.Int("j", runtime.NumCPU(), "concurrent simulation cells (1 = serial)")
	quick := fs.Bool("quick", false, "reduced per-program cell grid")
	corpus := fs.String("corpus", "", "shrink failures and write reproducers under this directory")
	jsonOut := fs.String("json", "", "also write the report as JSON to this file")
	replay := fs.String("replay", "", "replay a reproducer (directory or repro.json) instead of sweeping")
	mut := fs.String("mut", "", "testing: inject a scheme-breaking mutation into every program (tas-plain)")
	maxCycles := fs.Int64("limit", 0, "per-cell cycle budget (0: default)")
	if err := fs.Parse(args); err != nil {
		return experiments.ExitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "interleavefuzz: unexpected arguments: %v\n", fs.Args())
		return experiments.ExitUsage
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	lim := fuzz.Limits{MaxCycles: *maxCycles}
	if *replay != "" {
		return runReplay(ctx, *replay, *quick, *jobs, lim, *jsonOut)
	}

	cfg := fuzz.SweepConfig{
		Programs:    *n,
		BaseSeed:    *seed,
		Threads:     *threads,
		Parallelism: *jobs,
		Quick:       *quick,
		CorpusDir:   *corpus,
		Limits:      lim,
		Mut:         *mut,
	}
	rep, err := fuzz.Sweep(ctx, cfg)
	rep.Render(os.Stdout)
	if *jsonOut != "" {
		if werr := writeJSON(*jsonOut, rep); werr != nil {
			fmt.Fprintln(os.Stderr, "interleavefuzz:", werr)
			return experiments.ExitFailure
		}
	}
	if err != nil {
		if guard.IsCancellation(err) || rep.Interrupted {
			fmt.Fprintln(os.Stderr, "interleavefuzz: interrupted:", guard.Report(err))
			return experiments.ExitInterrupted
		}
		fmt.Fprintln(os.Stderr, "interleavefuzz:", err)
		return experiments.ExitFailure
	}
	if !rep.Clean() {
		return experiments.ExitFailure
	}
	return experiments.ExitSuccess
}

// runReplay re-runs a persisted reproducer's exact cell grid.
func runReplay(ctx context.Context, path string, quick bool, jobs int, lim fuzz.Limits, jsonOut string) int {
	rep, err := fuzz.LoadReproducer(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "interleavefuzz:", err)
		return experiments.ExitFailure
	}
	spec := rep.Spec
	pool := experiments.NewPool(jobs)
	cells, results, err := fuzz.RunProgram(ctx, spec, quick, lim, pool)
	if err != nil {
		if guard.IsCancellation(err) || ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "interleavefuzz: interrupted:", guard.Report(err))
			return experiments.ExitInterrupted
		}
		fmt.Fprintln(os.Stderr, "interleavefuzz:", err)
		return experiments.ExitFailure
	}
	divs := fuzz.Check(cells, results)
	var cellErrs []string
	for _, r := range results {
		if r != nil && r.Err != "" {
			cellErrs = append(cellErrs, r.Key+": "+r.Err)
		}
	}
	fmt.Printf("replay %s: seed %d, threads %d, %d items, %d cells\n",
		spec.Name(), spec.Seed, spec.Threads, spec.Items(), len(cells))
	if spec.Mut != "" {
		fmt.Printf("injected mutation: %s\n", spec.Mut)
	}
	for _, e := range cellErrs {
		fmt.Printf("  error: %s\n", e)
	}
	for _, d := range divs {
		fmt.Printf("  divergence: %s\n", d)
	}
	if jsonOut != "" {
		out := struct {
			Spec        *fuzz.Spec        `json:"spec"`
			Cells       int               `json:"cells"`
			Divergences []fuzz.Divergence `json:"divergences,omitempty"`
			CellErrors  []string          `json:"cell_errors,omitempty"`
		}{spec, len(cells), divs, cellErrs}
		if err := writeJSON(jsonOut, out); err != nil {
			fmt.Fprintln(os.Stderr, "interleavefuzz:", err)
			return experiments.ExitFailure
		}
	}
	if len(divs) > 0 || len(cellErrs) > 0 {
		fmt.Printf("divergence reproduced (%d divergences, %d cell errors)\n", len(divs), len(cellErrs))
		return experiments.ExitFailure
	}
	fmt.Println("clean: no divergence")
	return experiments.ExitSuccess
}

func writeJSON(path string, v any) error {
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
