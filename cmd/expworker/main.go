// Command expworker is the distributed experiment service's worker: it
// leases grid cells from an expserve coordinator, simulates them through
// the same per-cell policy cmd/experiments uses (derived seeds, doubled
// budget retry), and reports the records back under heartbeat-renewed
// leases.
//
//	expworker -coordinator http://host:port [-name N] [-slots K] [-fault PLAN]
//
// -fault scripts deterministic process-level failures for the chaos
// harness ("die-mid-cell@3", "die-before-ack@1,heartbeat-stall@4"): the
// worker executes the fault on that cell-execution ordinal and, for the
// dying kinds, stops abruptly — no completion, no heartbeat — exactly as
// a crash would, but with a distinguishable exit code.
//
// Exit codes: 0 never in practice (workers run until stopped),
// 2 usage, 3 SIGINT/SIGTERM drain, 7 injected fault executed,
// 1 anything else.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/guard"
	"repro/internal/service"
)

// ExitFaultInjected distinguishes a scripted chaos death from a real
// failure; the crash harness asserts on it.
const ExitFaultInjected = 7

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("expworker", flag.ContinueOnError)
	coordinator := fs.String("coordinator", "", "coordinator base URL (required)")
	name := fs.String("name", "", "worker name (default: host.pid)")
	slots := fs.Int("slots", 1, "concurrently simulated cells")
	poll := fs.Duration("poll", 250*time.Millisecond, "idle lease re-poll interval")
	fault := fs.String("fault", "", "chaos fault plan, e.g. die-mid-cell@3 (kinds: die-mid-cell, die-before-ack, heartbeat-stall)")
	if err := fs.Parse(args); err != nil {
		return experiments.ExitUsage
	}
	if *coordinator == "" {
		fmt.Fprintln(os.Stderr, "expworker: -coordinator is required")
		return experiments.ExitUsage
	}
	plan, err := guard.ParseFaultPlan(*fault)
	if err != nil {
		fmt.Fprintln(os.Stderr, "expworker:", err)
		return experiments.ExitUsage
	}
	if *name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*name = fmt.Sprintf("%s.%d", host, os.Getpid())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	w := service.NewWorker(service.WorkerConfig{
		Coordinator:  *coordinator,
		Name:         *name,
		Slots:        *slots,
		PollInterval: *poll,
		Plan:         plan,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "expworker: "+format+"\n", a...)
		},
	})
	err = w.Run(ctx)
	switch {
	case errors.Is(err, service.ErrFaultInjected):
		fmt.Fprintln(os.Stderr, "expworker:", err)
		return ExitFaultInjected
	case ctx.Err() != nil:
		fmt.Fprintln(os.Stderr, "expworker: interrupted; drained")
		return experiments.ExitInterrupted
	case err != nil:
		fmt.Fprintln(os.Stderr, "expworker:", err)
		return experiments.ExitFailure
	}
	return 0
}
