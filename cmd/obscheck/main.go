// Command obscheck validates observability exports: JSON-lines metrics
// files (-metrics-out) against the schema documented in
// internal/metrics/export.go, and Chrome trace_event files (-trace-out)
// against the phase set the exporter emits. scripts/check.sh runs it over
// a small grid so schema drift fails CI instead of silently breaking
// downstream consumers.
//
// Usage:
//
//	obscheck file.jsonl trace.json ...
//
// Files ending in .jsonl are checked as JSON-lines metrics; everything
// else is checked as a Chrome trace. Exits non-zero on the first invalid
// file.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/metrics"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: obscheck file.jsonl trace.json ...")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	code := 0
	for _, path := range flag.Args() {
		file, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "obscheck:", err)
			code = 1
			continue
		}
		var n int
		kind := "trace"
		if strings.HasSuffix(path, ".jsonl") {
			kind = "jsonl"
			n, err = metrics.ValidateJSONL(file)
		} else {
			n, err = metrics.ValidateChromeTrace(file)
		}
		file.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %s: %v\n", path, err)
			code = 1
			continue
		}
		unit := "events"
		if kind == "jsonl" {
			unit = "lines"
		}
		fmt.Printf("ok %s (%d %s)\n", path, n, unit)
	}
	os.Exit(code)
}
