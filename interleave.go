// Package interleave is a cycle-level simulation library for
// multiple-context (hardware-multithreaded) processors, reproducing
// Laudon, Gupta & Horowitz, "Interleaving: A Multithreading Technique
// Targeting Multiprocessors and Workstations" (ASPLOS 1994).
//
// The library models a MIPS-II-like in-order pipeline with four
// context-multiplexing schemes — the single-context baseline, the blocked
// scheme (switch on cache miss, full pipeline flush), the paper's proposed
// interleaved scheme (cycle-by-cycle round-robin with selective squash),
// and the HEP-style fine-grained scheme — over two memory systems: a
// workstation cache hierarchy (split 64 KB L1s, unified 1 MB L2,
// interleaved memory banks, data TLB) and a DASH-like directory-coherent
// multiprocessor.
//
// # Quick start
//
//	b := interleave.NewProgram("count", 0x1000, 0x100000, 1<<20)
//	b.Li(interleave.R1, 1000)
//	b.Label("loop")
//	b.Addi(interleave.R1, interleave.R1, -1)
//	b.Bgtz(interleave.R1, "loop")
//	b.Halt()
//	p := b.MustBuild()
//
//	m, _ := interleave.NewMachine(interleave.DefaultConfig(interleave.Interleaved, 4))
//	m.Load(0, p)
//	cycles, _ := m.RunUntilHalted(1 << 20)
//
// Higher-level entry points run the paper's full experiments: see
// RunTable7, RunTable10, and the cmd/ tools.
package interleave

import (
	"repro/internal/apps"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mem"
	"repro/internal/mp"
	"repro/internal/prog"
	"repro/internal/splash"
	"repro/internal/workstation"
)

// Scheme selects the context-multiplexing policy.
type Scheme = core.Scheme

// Context-multiplexing schemes.
const (
	// Single is the single-context baseline processor.
	Single = core.Single
	// Blocked switches contexts on cache misses with a full pipeline
	// flush (APRIL / Weber-Gupta style).
	Blocked = core.Blocked
	// BlockedFast is the blocked scheme with replicated pipeline
	// registers (one-cycle switch).
	BlockedFast = core.BlockedFast
	// Interleaved is the paper's proposal: cycle-by-cycle round-robin
	// issue with selective squash.
	Interleaved = core.Interleaved
	// FineGrained is the HEP-style baseline: no data cache, one
	// instruction per context in the pipeline.
	FineGrained = core.FineGrained
)

// Core processor types.
type (
	// Config parameterizes a processor core (scheme, contexts, pipeline
	// depth, switch costs, BTB size).
	Config = core.Config
	// Stats is the per-processor issue-slot accounting.
	Stats = core.Stats
	// Breakdown maps slot classes onto the paper's reporting categories.
	Breakdown = core.Breakdown
	// Thread is a software thread (architectural state + program).
	Thread = core.Thread
	// TraceEvent describes how one cycle was spent.
	TraceEvent = core.TraceEvent
)

// DefaultConfig returns the paper's processor configuration for the given
// scheme and context count.
func DefaultConfig(s Scheme, contexts int) Config { return core.DefaultConfig(s, contexts) }

// Program construction.
type (
	// Builder assembles programs in the simulated ISA.
	Builder = prog.Builder
	// Program is a linked executable program.
	Program = prog.Program
	// YieldMode selects the latency-tolerance instruction emitted at
	// yield points (none / backoff / switch).
	YieldMode = prog.YieldMode
)

// Yield modes.
const (
	YieldNone    = prog.YieldNone
	YieldBackoff = prog.YieldBackoff
	YieldSwitch  = prog.YieldSwitch
)

// NewProgram returns a builder for a program with code at codeBase and a
// data arena of dataSize bytes at dataBase.
func NewProgram(name string, codeBase, dataBase, dataSize uint32) *Builder {
	return prog.NewBuilder(name, codeBase, dataBase, dataSize)
}

// Assemble parses assembly text (see internal/prog's assembler syntax and
// examples/asm) into a linked program.
func Assemble(name string, codeBase, dataBase, dataSize uint32, src string) (*Program, error) {
	return prog.Assemble(name, codeBase, dataBase, dataSize, src)
}

// NewThread wraps a program in a runnable thread.
func NewThread(name string, p *Program) *Thread { return core.NewThread(name, p) }

// CacheParams configures the workstation memory hierarchy (paper Tables
// 1-2).
type CacheParams = cache.Params

// DefaultCacheParams returns the paper's workstation hierarchy parameters.
func DefaultCacheParams() CacheParams { return cache.DefaultParams() }

// Machine is a single multiple-context processor over the workstation
// cache hierarchy — the simplest way to run programs.
type Machine struct {
	Proc      *core.Processor
	Hierarchy *cache.Hierarchy
	Memory    *mem.Memory
}

// NewMachine builds a machine with the paper's default hierarchy.
func NewMachine(cfg Config) (*Machine, error) {
	return NewMachineWithCaches(cfg, cache.DefaultParams())
}

// NewMachineWithCaches builds a machine with an explicit hierarchy
// configuration.
func NewMachineWithCaches(cfg Config, cp CacheParams) (*Machine, error) {
	fm := mem.New()
	h, err := cache.NewHierarchy(cp)
	if err != nil {
		return nil, err
	}
	proc, err := core.NewProcessor(cfg, h, fm)
	if err != nil {
		return nil, err
	}
	return &Machine{Proc: proc, Hierarchy: h, Memory: fm}, nil
}

// Load binds program p to hardware context ctx (loading its initial data)
// and returns the created thread.
func (m *Machine) Load(ctx int, p *Program) *Thread {
	p.LoadInit(m.Memory)
	th := core.NewThread(p.Name, p)
	m.Proc.BindThread(ctx, th)
	return th
}

// Run advances the machine n cycles.
func (m *Machine) Run(n int64) { m.Proc.Run(n) }

// RunUntilHalted runs until every loaded thread halts or limit cycles
// elapse; it reports the cycles executed and whether everything halted.
func (m *Machine) RunUntilHalted(limit int64) (int64, bool) {
	return m.Proc.RunUntilHalted(limit)
}

// Stats returns the machine's issue-slot accounting.
func (m *Machine) Stats() *Stats { return &m.Proc.Stats }

// Workstation multiprogramming (paper §4-5.1).
type (
	// Kernel is a buildable uniprocessor application.
	Kernel = apps.Kernel
	// KernelOptions parameterize a kernel build.
	KernelOptions = apps.Options
	// WorkstationConfig parameterizes a multiprogrammed workstation run.
	WorkstationConfig = workstation.Config
	// WorkstationResult is the outcome of a workstation run.
	WorkstationResult = workstation.Result
)

// Kernels returns the twelve SPEC89-like uniprocessor kernels by name.
func Kernels() map[string]Kernel { return apps.Registry() }

// DefaultWorkstationConfig returns the paper's workstation setup.
func DefaultWorkstationConfig(s Scheme, contexts int) WorkstationConfig {
	return workstation.DefaultConfig(s, contexts)
}

// RunWorkstation simulates kernels as a multiprogrammed workload.
func RunWorkstation(kernels []Kernel, cfg WorkstationConfig) (*WorkstationResult, error) {
	return workstation.Run(kernels, cfg)
}

// Multiprocessor (paper §5.2).
type (
	// App is a buildable SPMD parallel application.
	App = splash.App
	// AppOptions parameterize an app build.
	AppOptions = splash.Options
	// MPConfig parameterizes a multiprocessor run.
	MPConfig = mp.Config
	// MPResult is the outcome of a multiprocessor run.
	MPResult = mp.Result
)

// SPMD identity registers set by RunMultiprocessor in every thread.
const (
	// TidReg receives the thread id.
	TidReg = mp.TidReg
	// NThreadsReg receives the thread count.
	NThreadsReg = mp.NThreadsReg
)

// Apps returns the seven SPLASH-like parallel applications by name.
func Apps() map[string]App { return splash.Registry() }

// DefaultMPConfig returns the paper's 8-node multiprocessor setup.
func DefaultMPConfig(s Scheme, contexts int) MPConfig { return mp.DefaultConfig(s, contexts) }

// RunMultiprocessor executes program p as an SPMD application with
// Processors×Contexts threads over the directory-coherent fabric.
func RunMultiprocessor(p *Program, cfg MPConfig) (*MPResult, error) { return mp.Run(p, cfg) }

// Experiment drivers: each regenerates a table or figure of the paper.
// Both evaluation configs carry a Parallelism field: the grid's
// simulation cells fan out across that many workers (0 = all CPUs,
// 1 = serial) with byte-identical results at every setting.
type (
	// UniConfig parameterizes the workstation evaluation (Table 7,
	// Figures 6-7).
	UniConfig = experiments.UniConfig
	// UniResult holds the workstation evaluation results.
	UniResult = experiments.UniResult
	// MPEvalConfig parameterizes the multiprocessor evaluation
	// (Table 10, Figures 8-9).
	MPEvalConfig = experiments.MPConfig
	// MPEvalResult holds the multiprocessor evaluation results.
	MPEvalResult = experiments.MPResult
)

// RunTable7 runs the full workstation evaluation (Table 7, Figures 6-7).
func RunTable7(cfg UniConfig) (*UniResult, error) { return experiments.RunUniprocessor(cfg) }

// RunTable10 runs the full multiprocessor evaluation (Table 10, Figures
// 8-9).
func RunTable10(cfg MPEvalConfig) (*MPEvalResult, error) {
	return experiments.RunMultiprocessor(cfg)
}

// DefaultUniConfig returns the paper-scale workstation evaluation setup.
func DefaultUniConfig() UniConfig { return experiments.DefaultUniConfig() }

// DefaultMPEvalConfig returns the paper-scale multiprocessor evaluation
// setup.
func DefaultMPEvalConfig() MPEvalConfig { return experiments.DefaultMPConfig() }
